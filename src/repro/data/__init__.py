"""Data plane: typed schemas, in-memory tables, and CSV I/O.

Every engine in the reproduction (cleartext Python, the Spark-like
data-parallel simulator, the MPC substrates and the hybrid protocols)
exchanges data as :class:`~repro.data.table.Table` objects described by a
:class:`~repro.data.schema.Schema`.
"""

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.data.csvio import read_csv, write_csv

__all__ = [
    "ColumnDef",
    "ColumnType",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
]
