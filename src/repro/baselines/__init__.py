"""Baseline systems Conclave is compared against in the paper's evaluation.

Currently this contains an SMCQL-style executor (§7.4): public/private
column annotations, slice-based execution on public keys, and an
ObliVM-calibrated garbled-circuit backend for the slices that must run under
MPC.
"""

from repro.baselines.smcql import SMCQLBaseline, SMCQLCostParams

__all__ = ["SMCQLBaseline", "SMCQLCostParams"]
