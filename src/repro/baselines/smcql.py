"""SMCQL-style baseline executor (§7.4, Figure 7).

SMCQL (Bater et al., VLDB 2017) is the system most similar to Conclave.  Its
optimizations differ in three ways that matter for the comparison:

* columns are annotated only as *public* or *private* (no per-party trust
  sets, hence no hybrid protocols);
* "slicing" partitions relations on a public key: slices whose key values
  only one party holds are processed locally, the rest run under MPC —
  one (small) MPC per slice;
* the MPC backend is ObliVM, a two-party garbled-circuit framework that is
  markedly slower than Sharemind on relational workloads.

This module implements the two SMCQL queries the paper benchmarks — aspirin
count and comorbidity — with exactly that execution strategy: real sliced
execution over :class:`~repro.data.table.Table` inputs, an
ObliVM-calibrated garbled-circuit cost model for the MPC slices, and
closed-form estimators for the large input sizes of Figure 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.mpc.estimates import bitonic_comparator_count
from repro.mpc.garbled import (
    GATES_PER_ADDITION,
    GATES_PER_COMPARISON,
    GATES_PER_MUX,
    VALUE_BITS,
)
from repro.mpc.runtime import ObliVMCostModel
from repro.workloads.healthlnk import ASPIRIN_CODE, HEART_DISEASE_CODE


@dataclass(frozen=True)
class SMCQLCostParams:
    """Cost constants of SMCQL's execution engine."""

    #: Per-slice MPC session overhead (JVM circuit generation + OT setup).
    per_slice_overhead_seconds: float = 0.9
    #: Cleartext cost per record for locally-processed slices.
    per_local_record_seconds: float = 2.0e-6
    #: Fixed planner/driver overhead per query.
    startup_seconds: float = 5.0


@dataclass
class SMCQLResult:
    """Result and accounting of one SMCQL query execution."""

    value: object
    simulated_seconds: float
    mpc_slices: int
    local_slices: int
    mpc_gates: int


class SMCQLBaseline:
    """Sliced, ObliVM-backed executor for the paper's two SMCQL queries."""

    def __init__(
        self,
        cost_params: SMCQLCostParams | None = None,
        oblivm_model: ObliVMCostModel | None = None,
    ):
        self.cost = cost_params or SMCQLCostParams()
        self.oblivm = oblivm_model or ObliVMCostModel()

    # -- aspirin count -----------------------------------------------------------------------

    def run_aspirin_count(
        self, diagnoses: list[Table], medications: list[Table]
    ) -> SMCQLResult:
        """Execute the aspirin-count query with sliced ObliVM execution.

        The query joins diagnoses and medications on the public patient id,
        filters for heart-disease diagnoses and aspirin prescriptions (both
        private columns), and counts distinct patients.
        """
        if len(diagnoses) != 2 or len(medications) != 2:
            raise ValueError("SMCQL's backend supports exactly two parties")

        diag_by_party = [self._group_by_key(t, "patient_id") for t in diagnoses]
        med_by_party = [self._group_by_key(t, "patient_id") for t in medications]
        all_keys = set().union(*[set(g) for g in diag_by_party + med_by_party])

        matching_patients: set[int] = set()
        mpc_slices = 0
        local_slices = 0
        local_records = 0
        total_gates = 0

        for key in all_keys:
            holders = {
                p
                for p in (0, 1)
                if key in diag_by_party[p] or key in med_by_party[p]
            }
            diag_rows = [diag_by_party[p].get(key, []) for p in (0, 1)]
            med_rows = [med_by_party[p].get(key, []) for p in (0, 1)]
            d = [row for rows in diag_rows for row in rows]
            m = [row for rows in med_rows for row in rows]
            matched = self._aspirin_slice_matches(d, m)

            if len(holders) <= 1:
                local_slices += 1
                local_records += len(d) + len(m)
            else:
                mpc_slices += 1
                total_gates += self._aspirin_slice_gates(len(d), len(m))
            if matched:
                matching_patients.add(key)

        seconds = (
            self.cost.startup_seconds
            + local_records * self.cost.per_local_record_seconds
            + mpc_slices * self.cost.per_slice_overhead_seconds
            + self.oblivm.seconds(total_gates, 0)
        )
        return SMCQLResult(
            value=len(matching_patients),
            simulated_seconds=seconds,
            mpc_slices=mpc_slices,
            local_slices=local_slices,
            mpc_gates=total_gates,
        )

    def estimate_aspirin_count(
        self,
        rows_per_party: int,
        patient_overlap: float = 0.02,
        rows_per_patient: float = 1.0,
    ) -> float:
        """Closed-form runtime estimate for large aspirin-count inputs."""
        patients_per_party = max(1, int(rows_per_party / max(rows_per_patient, 1e-9)))
        shared_patients = int(patients_per_party * patient_overlap)
        local_records = 4 * rows_per_party - 4 * shared_patients * rows_per_patient
        slice_d = 2 * rows_per_patient
        slice_m = 2 * rows_per_patient
        gates = shared_patients * self._aspirin_slice_gates(int(slice_d), int(slice_m))
        return (
            self.cost.startup_seconds
            + max(0.0, local_records) * self.cost.per_local_record_seconds
            + shared_patients * self.cost.per_slice_overhead_seconds
            + self.oblivm.seconds(gates, 0)
        )

    def _aspirin_slice_gates(self, diag_rows: int, med_rows: int) -> int:
        """Garbled gates of one sliced filter+join+distinct circuit."""
        filter_gates = (diag_rows + med_rows) * GATES_PER_COMPARISON
        join_gates = diag_rows * med_rows * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX)
        exists_gates = max(1, diag_rows * med_rows) * GATES_PER_ADDITION
        return filter_gates + join_gates + exists_gates

    @staticmethod
    def _aspirin_slice_matches(diag_rows: list[tuple], med_rows: list[tuple]) -> bool:
        has_heart = any(row[1] == HEART_DISEASE_CODE for row in diag_rows)
        has_aspirin = any(row[1] == ASPIRIN_CODE for row in med_rows)
        return has_heart and has_aspirin

    # -- comorbidity -------------------------------------------------------------------------

    def run_comorbidity(self, diagnoses: list[Table], top_k: int = 10) -> SMCQLResult:
        """Execute the comorbidity query (top-k diagnoses by frequency).

        Like Conclave, SMCQL splits the aggregation into local partial counts
        and an MPC merge; unlike Conclave, the merge plus the order-by run as
        one ObliVM garbled circuit.
        """
        if len(diagnoses) != 2:
            raise ValueError("SMCQL's backend supports exactly two parties")
        partials = [t.aggregate(["diagnosis"], None, "count", "cnt") for t in diagnoses]
        local_records = sum(t.num_rows for t in diagnoses)
        merged = partials[0].concat(partials[1])
        counts = merged.aggregate(["diagnosis"], "cnt", "sum", "cnt")
        result = counts.sort_by(["cnt"], ascending=False).limit(top_k)

        mpc_rows = merged.num_rows
        gates = self._comorbidity_gates(mpc_rows)
        seconds = (
            self.cost.startup_seconds
            + local_records * self.cost.per_local_record_seconds
            + self.cost.per_slice_overhead_seconds
            + self.oblivm.seconds(gates, mpc_rows * 2 * VALUE_BITS)
        )
        return SMCQLResult(
            value=result,
            simulated_seconds=seconds,
            mpc_slices=1,
            local_slices=2,
            mpc_gates=gates,
        )

    def estimate_comorbidity(self, rows_per_party: int, distinct_fraction: float = 0.1) -> float:
        """Closed-form runtime estimate for large comorbidity inputs."""
        mpc_rows = int(2 * rows_per_party * distinct_fraction)
        gates = self._comorbidity_gates(mpc_rows)
        return (
            self.cost.startup_seconds
            + 2 * rows_per_party * self.cost.per_local_record_seconds
            + self.cost.per_slice_overhead_seconds
            + self.oblivm.seconds(gates, mpc_rows * 2 * VALUE_BITS)
        )

    def _comorbidity_gates(self, mpc_rows: int) -> int:
        """Gates of the ObliVM merge aggregation plus the order-by circuit."""
        if mpc_rows <= 1:
            return GATES_PER_COMPARISON
        agg_sort = bitonic_comparator_count(mpc_rows) * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX)
        agg_scan = (mpc_rows - 1) * (GATES_PER_COMPARISON + GATES_PER_ADDITION + GATES_PER_MUX)
        groups = max(2, int(mpc_rows / 2))
        order_by = bitonic_comparator_count(groups) * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX)
        return agg_sort + agg_scan + order_by

    # -- helpers -------------------------------------------------------------------------------

    @staticmethod
    def _group_by_key(table: Table, key: str) -> dict[int, list[tuple]]:
        groups: dict[int, list[tuple]] = {}
        key_idx = table.schema.index_of(key)
        for row in table.rows():
            groups.setdefault(int(row[key_idx]), []).append(row)
        return groups
