"""Reproduction of *Conclave: secure multi-party computation on big data*
(Volgushev et al., EuroSys 2019).

The top-level package re-exports the analyst-facing API so queries read like
the paper's listings.  Queries are written against the expression frontend:
predicates and derived columns are ordinary Python expressions over
:func:`col` and :func:`lit`, joins take multi-column keys via ``on=``, and
group-bys compute any number of aggregates in one call::

    import repro as cc

    with cc.QueryContext() as q:
        pA, pB = cc.Party("mpc.ftc.gov"), cc.Party("mpc.a.com")
        demo = cc.new_table("demographics", [cc.Column("ssn"), cc.Column("zip")], at=pA)
        scores = cc.new_table("scores", [cc.Column("ssn"), cc.Column("score")], at=pB)
        good = scores.filter((cc.col("score") > 600) & (cc.col("score") < 850))
        stats = demo.join(good, on="ssn").aggregate(
            group=["zip"], aggs={"total": cc.SUM("score"), "cnt": cc.COUNT()}
        )
        avg = stats.with_column("avg_score", cc.col("total") / cc.col("cnt"))
        avg.collect("avg_scores", to=[pA])

    compiled = cc.compile_query(q)
    runner = cc.QueryRunner(parties, inputs)
    print(runner.run(compiled).outputs["avg_scores"])

The compiler lowers every expression into its fixed relational operator
vocabulary before the optimisation passes run, so the cleartext/MPC/hybrid
split (push-down, push-up, hybrid operators, sort elimination) is untouched
by how a query was phrased.  The pre-redesign call shapes keep working and
emit ``DeprecationWarning``.

Sub-packages:

* :mod:`repro.core` — the query compiler, frontier/hybrid rewrites, code
  generation and multi-party dispatch (the paper's contribution).
* :mod:`repro.data` — schemas, tables and CSV I/O.
* :mod:`repro.mpc` — the secret-sharing (Sharemind-style) and garbled-circuit
  (Obliv-C-style) MPC substrates, built from scratch.
* :mod:`repro.cleartext` — sequential Python and Spark-like data-parallel
  cleartext engines.
* :mod:`repro.runtime` — the distributed party-agent runtime: pluggable
  transports (in-process simulation vs. real TCP sockets between per-party
  OS processes), the coordinator/agent execution split, and the persistent
  query service.  Pass ``runtime="sockets"`` to :func:`run_query` for a
  per-query agent mesh, ``runtime="service"`` to reuse a standing one, or
  hold a session yourself::

      with cc.open_session(inputs) as session:
          for plan in plans:
              result = session.submit(plan)
* :mod:`repro.hybrid` — the hybrid MPC–cleartext protocols (§5.3).
* :mod:`repro.workloads` — synthetic workload generators for every
  experiment in the paper.
* :mod:`repro.baselines` — the SMCQL-style comparison system (§7.4).
"""

from repro.core import (
    AggFunc,
    AggSpec,
    COMPOSITE_KEY_BASE,
    COUNT,
    Column,
    Expr,
    col,
    lit,
    CompilationConfig,
    CompiledQuery,
    GatewayConfig,
    RestartPolicy,
    RetryPolicy,
    EstimatedOOM,
    EstimatorParams,
    FLOAT,
    INT,
    MAX,
    MEAN,
    MIN,
    Party,
    PlanEstimator,
    QueryContext,
    QueryResult,
    QueryRunner,
    RelationHandle,
    SUM,
    SecurityError,
    compile_query,
    concat,
    new_table,
    run_query,
)
from repro.data import ColumnDef, ColumnType, Schema, Table, read_csv, write_csv
from repro.runtime import (
    AgentFailure,
    FaultPlan,
    GatewayMetrics,
    KillFault,
    LinkFault,
    QueryRejected,
    QuerySession,
    SessionClosed,
    SimulatedTransport,
    SocketCoordinator,
    SocketTransport,
    Transport,
    close_shared_sessions,
    open_session,
    run_query_sockets,
)

__version__ = "1.1.0"

__all__ = [
    "AggFunc",
    "AggSpec",
    "COMPOSITE_KEY_BASE",
    "COUNT",
    "Column",
    "Expr",
    "col",
    "lit",
    "CompilationConfig",
    "CompiledQuery",
    "GatewayConfig",
    "RestartPolicy",
    "RetryPolicy",
    "EstimatedOOM",
    "EstimatorParams",
    "FLOAT",
    "INT",
    "MAX",
    "MEAN",
    "MIN",
    "Party",
    "PlanEstimator",
    "QueryContext",
    "QueryResult",
    "QueryRunner",
    "RelationHandle",
    "SUM",
    "SecurityError",
    "compile_query",
    "concat",
    "new_table",
    "run_query",
    "ColumnDef",
    "ColumnType",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
    "AgentFailure",
    "FaultPlan",
    "GatewayMetrics",
    "KillFault",
    "LinkFault",
    "QueryRejected",
    "QuerySession",
    "SessionClosed",
    "SimulatedTransport",
    "SocketCoordinator",
    "SocketTransport",
    "Transport",
    "close_shared_sessions",
    "open_session",
    "run_query_sockets",
    "__version__",
]
