"""Reproduction of *Conclave: secure multi-party computation on big data*
(Volgushev et al., EuroSys 2019).

The top-level package re-exports the analyst-facing API so queries read like
the paper's listings::

    import repro as cc

    with cc.QueryContext() as q:
        pA, pB, pC = cc.Party("mpc.ftc.gov"), cc.Party("mpc.a.com"), cc.Party("mpc.b.cash")
        demo = cc.new_table("demographics", [cc.Column("ssn"), cc.Column("zip")], at=pA)
        ...
        result.collect("avg_scores", to=[pA])

    compiled = cc.compile_query(q)
    runner = cc.QueryRunner(parties, inputs)
    print(runner.run(compiled).outputs["avg_scores"])

Sub-packages:

* :mod:`repro.core` — the query compiler, frontier/hybrid rewrites, code
  generation and multi-party dispatch (the paper's contribution).
* :mod:`repro.data` — schemas, tables and CSV I/O.
* :mod:`repro.mpc` — the secret-sharing (Sharemind-style) and garbled-circuit
  (Obliv-C-style) MPC substrates, built from scratch.
* :mod:`repro.cleartext` — sequential Python and Spark-like data-parallel
  cleartext engines.
* :mod:`repro.hybrid` — the hybrid MPC–cleartext protocols (§5.3).
* :mod:`repro.workloads` — synthetic workload generators for every
  experiment in the paper.
* :mod:`repro.baselines` — the SMCQL-style comparison system (§7.4).
"""

from repro.core import (
    COUNT,
    Column,
    CompilationConfig,
    CompiledQuery,
    EstimatedOOM,
    EstimatorParams,
    FLOAT,
    INT,
    MAX,
    MEAN,
    MIN,
    Party,
    PlanEstimator,
    QueryContext,
    QueryResult,
    QueryRunner,
    RelationHandle,
    SUM,
    SecurityError,
    compile_query,
    concat,
    new_table,
    run_query,
)
from repro.data import ColumnDef, ColumnType, Schema, Table, read_csv, write_csv

__version__ = "1.0.0"

__all__ = [
    "COUNT",
    "Column",
    "CompilationConfig",
    "CompiledQuery",
    "EstimatedOOM",
    "EstimatorParams",
    "FLOAT",
    "INT",
    "MAX",
    "MEAN",
    "MIN",
    "Party",
    "PlanEstimator",
    "QueryContext",
    "QueryResult",
    "QueryRunner",
    "RelationHandle",
    "SUM",
    "SecurityError",
    "compile_query",
    "concat",
    "new_table",
    "run_query",
    "ColumnDef",
    "ColumnType",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
    "__version__",
]
