"""Cost accounting and cost models for the simulated MPC backends.

The reproduction cannot run the original testbed (Sharemind appliances,
Obliv-C processes and Spark clusters on separate VMs), so each backend
counts the work it performs — secret multiplications, oblivious comparisons,
shuffled elements, network rounds and bytes, records moved in and out of
MPC — in a :class:`CostMeter`.  A cost model then converts those counts into
*simulated seconds* using per-operation constants calibrated against the
behaviour reported in the paper (Figure 1 and the textual data points in
§2.3 and §7).  Shapes of all benchmark curves therefore follow from the
actual counted work of each protocol, not from hard-coded curves; only the
constants below are calibration inputs.

Calibration anchors (see EXPERIMENTS.md):

* Sharemind takes ~200 s to sort 16,000 elements (§2.3, citing Jónsson et
  al.), and >10 minutes for a projection of 3M records due to sharing and
  storage-layer overhead (Figure 1c).
* A Sharemind aggregation over 30k records takes ~10 minutes and a join over
  the same input over twenty minutes (Figure 5 caption).
* Obliv-C runs out of memory at ~30k records for a join and ~300k records
  for a projection on 4 GB VMs (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpc.network import NetworkStats


@dataclass
class CostMeter:
    """Counts of the work performed by one (simulated) MPC execution."""

    #: Cheap local operations on shares (additions, copies), per element.
    local_ops: int = 0
    #: Records secret-shared into the MPC (drives input/storage overhead).
    input_records: int = 0
    #: Records opened / revealed out of the MPC.
    output_records: int = 0
    #: Secret-shared multiplications (Beaver-triple uses).
    multiplications: int = 0
    #: Oblivious comparisons / equality tests (each is many multiplications,
    #: counted separately because they dominate sort- and join-heavy plans).
    comparisons: int = 0
    #: Elements moved by oblivious shuffles / reshares.
    shuffled_elements: int = 0
    #: Network traffic counters.
    network: NetworkStats = field(default_factory=NetworkStats)

    def merge(self, other: "CostMeter") -> None:
        """Accumulate another meter's counts into this one."""
        self.local_ops += other.local_ops
        self.input_records += other.input_records
        self.output_records += other.output_records
        self.multiplications += other.multiplications
        self.comparisons += other.comparisons
        self.shuffled_elements += other.shuffled_elements
        self.network.merge(other.network)

    def copy(self) -> "CostMeter":
        meter = CostMeter(
            local_ops=self.local_ops,
            input_records=self.input_records,
            output_records=self.output_records,
            multiplications=self.multiplications,
            comparisons=self.comparisons,
            shuffled_elements=self.shuffled_elements,
        )
        meter.network = self.network.copy()
        return meter

    def reset(self) -> None:
        self.local_ops = 0
        self.input_records = 0
        self.output_records = 0
        self.multiplications = 0
        self.comparisons = 0
        self.shuffled_elements = 0
        self.network.reset()


@dataclass(frozen=True)
class SharemindCostModel:
    """Cost model for the secret-sharing (Sharemind-style) backend.

    All constants are per-operation simulated seconds on the paper's
    testbed-class hardware (4 vCPU / 8 GB Sharemind VM, 1 Gb/s LAN).
    """

    #: Fixed protocol/session start-up time.
    startup_seconds: float = 2.0
    #: Secret-sharing + storage-layer overhead per input record.
    per_input_record_seconds: float = 2.0e-4
    #: Per revealed output record.
    per_output_record_seconds: float = 2.0e-5
    #: Per Beaver-triple multiplication (batched).
    per_multiplication_seconds: float = 2.0e-6
    #: Per oblivious comparison or equality test (includes its internal
    #: multiplications and bit-decomposition work).
    per_comparison_seconds: float = 5.0e-5
    #: Per element passed through an oblivious shuffle / reshare.
    per_shuffle_element_seconds: float = 1.0e-5
    #: Per cheap local share operation.
    per_local_op_seconds: float = 5.0e-8
    #: One network round-trip (LAN).
    round_latency_seconds: float = 1.0e-3
    #: Effective LAN bandwidth.
    bytes_per_second: float = 125.0e6

    def seconds(self, meter: CostMeter) -> float:
        """Convert a cost meter into simulated seconds."""
        return (
            self.startup_seconds
            + meter.input_records * self.per_input_record_seconds
            + meter.output_records * self.per_output_record_seconds
            + meter.multiplications * self.per_multiplication_seconds
            + meter.comparisons * self.per_comparison_seconds
            + meter.shuffled_elements * self.per_shuffle_element_seconds
            + meter.local_ops * self.per_local_op_seconds
            + meter.network.rounds * self.round_latency_seconds
            + meter.network.bytes_sent / self.bytes_per_second
        )


@dataclass(frozen=True)
class GarbledCostModel:
    """Cost model for the garbled-circuit (Obliv-C / ObliVM-style) backend.

    Garbled-circuit executions are dominated by the number of non-XOR gates
    (each requiring garbled-table generation, transfer, and evaluation) and
    by the circuit state held in memory (wire labels).  ``memory_limit_bytes``
    reproduces the out-of-memory failures the paper reports for Obliv-C.
    """

    #: Fixed start-up (OT base phase, process launch).
    startup_seconds: float = 1.0
    #: Per non-XOR gate: garbling + evaluation + transfer (amortised).
    per_gate_seconds: float = 1.0e-6
    #: Garbled-table bytes shipped per non-XOR gate.
    bytes_per_gate: int = 32
    #: Bytes of circuit state (wire labels, buffered tables) retained per
    #: live wire.
    bytes_per_live_wire: int = 16
    #: Oblivious-transfer cost per input bit.
    per_input_bit_seconds: float = 2.0e-6
    #: Effective LAN bandwidth.
    bytes_per_second: float = 125.0e6
    #: Memory available to the MPC process (the paper's VMs have 4 GB).
    memory_limit_bytes: int = 4 * 1024**3

    def seconds(self, gates: int, input_bits: int) -> float:
        """Simulated execution time for a circuit with ``gates`` non-XOR gates."""
        transfer = gates * self.bytes_per_gate / self.bytes_per_second
        return (
            self.startup_seconds
            + gates * self.per_gate_seconds
            + input_bits * self.per_input_bit_seconds
            + transfer
        )

    def memory_bytes(self, live_wires: int, buffered_gates: int) -> int:
        """Resident memory for a circuit with the given live state."""
        return live_wires * self.bytes_per_live_wire + buffered_gates * self.bytes_per_gate


@dataclass(frozen=True)
class ObliVMCostModel(GarbledCostModel):
    """Cost model for SMCQL's ObliVM backend.

    ObliVM is a Java garbled-circuit framework; the paper observes it to be
    considerably slower than both Obliv-C and Sharemind on relational
    workloads (§7.4).  We model that with a higher per-gate cost and a
    larger fixed start-up (JVM + circuit compilation), while keeping the
    same asymptotics.
    """

    startup_seconds: float = 5.0
    per_gate_seconds: float = 8.0e-6
    per_input_bit_seconds: float = 8.0e-6
    #: SMCQL experiments in the paper use 32 GB VMs.
    memory_limit_bytes: int = 32 * 1024**3


@dataclass
class SimulatedClock:
    """Accumulates simulated seconds across the phases of a query execution.

    The dispatcher advances the clock with the per-backend simulated time of
    each sub-plan; phases executed by different parties in parallel advance
    the clock by the maximum of their individual times.
    """

    elapsed_seconds: float = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative duration")
        self.elapsed_seconds += seconds

    def advance_parallel(self, durations: list[float]) -> None:
        """Advance by the longest of several concurrent phase durations."""
        if durations:
            self.advance(max(durations))

    def reset(self) -> None:
        self.elapsed_seconds = 0.0
