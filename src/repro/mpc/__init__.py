"""MPC substrate.

This package implements, from scratch, the secure-computation substrates the
Conclave prototype drives externally:

* :mod:`repro.mpc.secretshare` — additive secret sharing over Z_2^64 with
  Beaver-triple multiplication (the arithmetic core of a Sharemind-style
  three-party backend).
* :mod:`repro.mpc.network` — a simulated party-to-party network that counts
  messages, bytes and communication rounds.
* :mod:`repro.mpc.runtime` — cost models that convert counted work
  (multiplications, comparisons, rounds, bytes, local ops) into simulated
  wall-clock seconds, calibrated against the paper's Figure 1.
* :mod:`repro.mpc.oblivious` — oblivious sub-protocols: shuffle, bitonic
  sort, Laud-style oblivious indexing, and oblivious merge.
* :mod:`repro.mpc.protocols` — oblivious relational operators (project,
  filter, Cartesian-product join, Jónsson-style sort-based aggregation)
  executed over secret-shared tables.
* :mod:`repro.mpc.sharemind` — a Sharemind-like three-party MPC backend
  facade used by the compiler's code generator.
* :mod:`repro.mpc.garbled` — an Obliv-C-like two-party garbled-circuit
  backend: circuits are built gate-by-gate with realistic state (wire label)
  accounting and a memory limit that reproduces the OOM behaviour reported
  in the paper.
"""

from repro.mpc.secretshare import AdditiveSharing, SharedVector
from repro.mpc.network import Network, NetworkStats
from repro.mpc.runtime import CostMeter, SharemindCostModel, GarbledCostModel
from repro.mpc.sharemind import SharemindBackend
from repro.mpc.garbled import OblivCBackend, CircuitMemoryError

__all__ = [
    "AdditiveSharing",
    "SharedVector",
    "Network",
    "NetworkStats",
    "CostMeter",
    "SharemindCostModel",
    "GarbledCostModel",
    "SharemindBackend",
    "OblivCBackend",
    "CircuitMemoryError",
]
