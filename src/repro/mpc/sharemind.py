"""Sharemind-style secret-sharing MPC backend.

The real Conclave generates SecreC programs and submits them to a Sharemind
installation of three computing parties.  This module provides the
equivalent backend for the reproduction: a facade over the
:class:`~repro.mpc.secretshare.SecretSharingEngine` and the oblivious
relational protocols, exposing the uniform operator interface the compiler's
code generator targets (ingest, concat, project, filter, join, aggregate,
arithmetic, sort, distinct, limit, reveal) plus cost reporting.

Every handle returned by the backend is a
:class:`~repro.mpc.protocols.SharedTable`; data stays secret-shared between
operators and is only reconstructed by ``reveal``/``reveal_to``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.mpc import protocols
from repro.mpc.oblivious import oblivious_shuffle
from repro.mpc.protocols import SharedTable
from repro.data.schema import Schema
from repro.mpc.runtime import CostMeter, SharemindCostModel
from repro.mpc.secretshare import SecretSharingEngine, ShareSliceEngine, SharedVector


class SharemindBackend:
    """Three-party (by default) secret-sharing MPC backend."""

    #: Maximum number of computing parties Sharemind supports in the paper's
    #: deployment.
    MAX_PARTIES = 3
    name = "sharemind"
    is_mpc = True

    def __init__(
        self,
        party_names: Sequence[str],
        seed: int | None = 0,
        cost_model: SharemindCostModel | None = None,
        network=None,
        local_parties: Sequence[str] | None = None,
    ):
        party_names = list(party_names)
        if len(party_names) < 2:
            raise ValueError("the Sharemind backend needs at least two computing parties")
        if len(party_names) > self.MAX_PARTIES:
            raise ValueError(
                f"the Sharemind backend supports at most {self.MAX_PARTIES} computing parties"
            )
        self.party_names = party_names
        if local_parties is None:
            # All-local: the single-process simulation plays every party.
            self.engine: ShareSliceEngine = SecretSharingEngine(
                party_names, seed=seed, network=network
            )
        else:
            # A party agent: materialise only the local parties' share slices.
            self.engine = ShareSliceEngine(
                party_names, seed=seed, network=network, local_parties=local_parties
            )
        self.cost_model = cost_model or SharemindCostModel()

    # -- data movement -----------------------------------------------------------------

    def ingest(self, table: Table, contributor: str | None = None) -> SharedTable:
        """Secret-share a party's cleartext relation into the MPC."""
        return SharedTable.from_table(self.engine, table, contributor=contributor)

    def ingest_remote(self, schema: Schema, num_rows: int, contributor: str) -> SharedTable:
        """Receive another party's relation as share slices off the wire.

        Runs the same input rounds as :meth:`ingest` at the contributor, but
        with only the public metadata (schema, row count) known locally —
        the cleartext never reaches this process.
        """
        return SharedTable.from_metadata(self.engine, schema, num_rows, contributor)

    def ingest_shared(self, shared: SharedTable) -> SharedTable:
        """Accept an already-shared relation (e.g. produced by a hybrid step)."""
        if shared.engine is not self.engine:
            raise ValueError("shared relation belongs to a different MPC engine")
        return shared

    def reveal(self, handle: SharedTable) -> Table:
        """Open a relation to all parties."""
        return handle.reveal()

    def reveal_to(self, handle: SharedTable, party: str) -> Table:
        """Open a relation to a single (possibly external) party."""
        return handle.reveal_to(party)

    # -- relational operators -------------------------------------------------------------

    def concat(self, handles: Sequence[SharedTable]) -> SharedTable:
        return protocols.mpc_concat(list(handles))

    def project(self, handle: SharedTable, columns: Sequence[str]) -> SharedTable:
        return protocols.mpc_project(handle, columns)

    def filter(self, handle: SharedTable, column: str, op: str, value: float) -> SharedTable:
        return protocols.mpc_filter(handle, column, op, value)

    def arith(self, handle: SharedTable, out_name: str, left: str, op: str, right: str | float) -> SharedTable:
        return protocols.mpc_map(handle, out_name, left, op, right)

    def compare(self, handle: SharedTable, out_name: str, left: str, op: str, right: str | float) -> SharedTable:
        return protocols.mpc_compare(handle, out_name, left, op, right)

    def bool_op(self, handle: SharedTable, out_name: str, op: str, operands: Sequence[str]) -> SharedTable:
        return protocols.mpc_bool_op(handle, out_name, op, list(operands))

    def join(
        self, left: SharedTable, right: SharedTable, left_on: str, right_on: str
    ) -> SharedTable:
        return protocols.mpc_join(left, right, left_on, right_on)

    def aggregate(
        self,
        handle: SharedTable,
        group_by: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
        presorted: bool = False,
    ) -> SharedTable:
        return protocols.mpc_aggregate(handle, group_by, agg_col, func, out_name, presorted)

    def multiply(self, handle: SharedTable, out_name: str, left: str, right: str | float) -> SharedTable:
        right_arg: str | int = right if isinstance(right, str) else int(right)
        return protocols.mpc_multiply(handle, out_name, left, right_arg)

    def divide(self, handle: SharedTable, out_name: str, left: str, right: str) -> SharedTable:
        return protocols.mpc_divide(handle, out_name, left, right)

    def sort_by(self, handle: SharedTable, column: str, ascending: bool = True) -> SharedTable:
        return protocols.mpc_sort(handle, column, ascending=ascending)

    def merge_sorted(
        self, handles: Sequence[SharedTable], column: str, ascending: bool = True
    ) -> SharedTable:
        """Obliviously merge relations that are each sorted by ``column``.

        Costs an O(n log n) bitonic merge instead of a full oblivious sort —
        the primitive behind the sort push-up extension of §5.4.
        """
        return protocols.mpc_merge_sorted(list(handles), column, ascending=ascending)

    def distinct(self, handle: SharedTable, columns: Sequence[str]) -> SharedTable:
        return protocols.mpc_distinct(handle, columns)

    def limit(self, handle: SharedTable, n: int) -> SharedTable:
        """Keep the first ``n`` rows (used after an order-by)."""
        columns = [
            SharedVector(self.engine, [s[:n] for s in col.shares]) for col in handle.columns
        ]
        self.engine.meter.local_ops += min(n, handle.num_rows) * len(handle.columns)
        return SharedTable(self.engine, handle.schema, columns)

    def shuffle(self, handle: SharedTable) -> SharedTable:
        """Obliviously shuffle a relation (used by the hybrid protocols)."""
        columns = oblivious_shuffle(self.engine, handle.columns)
        return SharedTable(self.engine, handle.schema, columns)

    def enumerate_rows(self, handle: SharedTable, out_name: str = "row_id") -> SharedTable:
        """Append a public 0..n-1 row-identifier column (local operation)."""
        from repro.data.schema import ColumnDef, ColumnType

        ids = self.engine.constant(np.arange(handle.num_rows, dtype=np.int64))
        schema = handle.schema.with_column(ColumnDef(out_name, ColumnType.INT))
        return SharedTable(self.engine, schema, [*handle.columns, ids])

    # -- accounting -------------------------------------------------------------------------

    @property
    def meter(self) -> CostMeter:
        return self.engine.meter

    def elapsed_seconds(self) -> float:
        """Simulated seconds of MPC work performed so far."""
        return self.cost_model.seconds(self.engine.meter)

    def reset_meter(self) -> None:
        self.engine.meter.reset()
        self.engine.network.reset_stats()
