"""Oblivious sub-protocols over secret-shared columns.

These are the building blocks §5.3/§5.4 of the paper talk about: oblivious
shuffles, oblivious (bitonic) sorting networks, Laud-style oblivious
indexing, and oblivious merging of pre-sorted runs.  They operate on lists
of :class:`~repro.mpc.secretshare.SharedVector` columns (one entry per
relation column) so higher layers can treat a secret-shared relation as
"columns + schema".

Cost characteristics (what the cost meter records):

==============  =============================================
shuffle          O(n) reshared elements per column, one round per party
bitonic sort     O(n log^2 n) oblivious comparisons + the same number of
                 oblivious swaps (multiplications)
oblivious index  O((n + m) log(n + m)) comparisons (Laud's protocol)
oblivious merge  O(n log n) comparisons
==============  =============================================
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.mpc.network import Network
from repro.mpc.secretshare import AdditiveSharing, SecretSharingEngine, SharedVector

#: Sentinel key used to pad relations up to a power of two for sorting
#: networks.  Chosen as the largest signed 64-bit value so padding rows sort
#: after all real rows.
PAD_KEY = np.iinfo(np.int64).max


def oblivious_shuffle(
    engine: SecretSharingEngine,
    columns: Sequence[SharedVector],
    permutation: np.ndarray | None = None,
) -> list[SharedVector]:
    """Obliviously shuffle the rows of a shared relation.

    Every party contributes a random permutation in turn and the relation is
    reshared between applications, so no party learns the composite
    permutation.  Functionally we apply a single joint permutation (the
    composition) and meter the cost of the full resharing protocol.
    """
    if not columns:
        return []
    n = len(columns[0])
    for col in columns:
        if len(col) != n:
            raise ValueError("all columns of a relation must have the same length")
    if n == 0:
        return [SharedVector(engine, [s.copy() for s in col.shares]) for col in columns]

    if permutation is None:
        permutation = engine.rng.permutation(n)
    else:
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(n)):
            raise ValueError("permutation must be a permutation of 0..n-1")

    shuffled: list[SharedVector] = []
    for col in columns:
        new_shares = [share[permutation] for share in col.shares]
        # Resharing: add a fresh zero-sharing so old and new shares are
        # unlinkable.
        zero = AdditiveSharing.share(np.zeros(n, dtype=np.int64), engine.num_parties, engine.rng)
        new_shares = [s + z for s, z in zip(new_shares, zero)]
        shuffled.append(SharedVector(engine, new_shares))

    total_elements = n * len(columns)
    engine.meter.shuffled_elements += total_elements
    # One resharing round per party, each moving the full relation.
    engine.network.account_rounds(
        engine.num_parties,
        total_elements * Network.SHARE_BYTES,
        messages_per_round=engine.num_parties,
    )
    return shuffled


def oblivious_sort(
    engine: SecretSharingEngine,
    key: SharedVector,
    payload: Sequence[SharedVector],
) -> tuple[SharedVector, list[SharedVector]]:
    """Sort a shared relation by a shared key column with a bitonic network.

    Returns the sorted key column and the payload columns reordered in step.
    The network performs ``O(n log^2 n)`` compare-exchange operations; each
    one is an oblivious comparison plus an oblivious conditional swap of the
    key and every payload column.
    """
    n = len(key)
    if n <= 1:
        return key, list(payload)

    # Pad to the next power of two with sentinel keys that sort last.
    size = 1 << math.ceil(math.log2(n))
    pad = size - n
    key_vals = _padded(engine, key, pad, PAD_KEY)
    payload_vals = [_padded(engine, col, pad, 0) for col in payload]

    columns = [key_vals, *payload_vals]
    for stage_size, step in _bitonic_schedule(size):
        _compare_exchange_pass(engine, columns, size, stage_size, step)

    key_sorted = _truncate(engine, columns[0], n)
    payload_sorted = [_truncate(engine, col, n) for col in columns[1:]]
    return key_sorted, payload_sorted


def oblivious_merge(
    engine: SecretSharingEngine,
    sorted_runs: Sequence[tuple[SharedVector, Sequence[SharedVector]]],
) -> tuple[SharedVector, list[SharedVector]]:
    """Obliviously merge several relations that are each sorted by key.

    The merge is a bitonic merger over the concatenation of the runs:
    ``O(n log n)`` comparisons rather than the full ``O(n log^2 n)`` of a
    sort, which is what makes the sort push-up through ``concat`` worthwhile
    (§5.4).
    """
    if not sorted_runs:
        raise ValueError("need at least one run to merge")
    width = len(list(sorted_runs[0][1]))
    for _, payload in sorted_runs:
        if len(list(payload)) != width:
            raise ValueError("all runs must have the same payload width")

    merged_key, merged_payload = sorted_runs[0][0], list(sorted_runs[0][1])
    for next_key, next_payload in sorted_runs[1:]:
        merged_key, merged_payload = _bitonic_merge_two(
            engine, merged_key, merged_payload, next_key, list(next_payload)
        )
    return merged_key, merged_payload


def _bitonic_merge_two(
    engine: SecretSharingEngine,
    key_a: SharedVector,
    payload_a: list[SharedVector],
    key_b: SharedVector,
    payload_b: list[SharedVector],
) -> tuple[SharedVector, list[SharedVector]]:
    """Merge two ascending runs with a single bitonic merge pass.

    Reversing the second run turns the concatenation into a bitonic
    sequence, which one O(n log n) merge network sorts completely.
    """
    n = len(key_a) + len(key_b)
    if n <= 1:
        key = _concat_shared(engine, [key_a, key_b])
        payload = [_concat_shared(engine, [a, b]) for a, b in zip(payload_a, payload_b)]
        return key, payload

    # Pad the second run with sentinel keys (still ascending), then reverse
    # it so the concatenation  A(asc) ++ B'(desc)  is a bitonic sequence of
    # exactly power-of-two length; the sentinels sort to the end and are
    # truncated away afterwards.
    size = 1 << math.ceil(math.log2(n))
    pad = size - n
    key_b = _padded(engine, key_b, pad, PAD_KEY)
    payload_b = [_padded(engine, col, pad, 0) for col in payload_b]
    key_b_rev = SharedVector(engine, [s[::-1].copy() for s in key_b.shares])
    payload_b_rev = [
        SharedVector(engine, [s[::-1].copy() for s in col.shares]) for col in payload_b
    ]
    key = _concat_shared(engine, [key_a, key_b_rev])
    payload = [
        _concat_shared(engine, [a, b]) for a, b in zip(payload_a, payload_b_rev)
    ]

    columns = [key, *payload]
    # A single bitonic merge pass: log(size) exchange stages over the whole
    # (bitonic) sequence, all in ascending direction.
    step = size // 2
    while step >= 1:
        _compare_exchange_pass(engine, columns, size, 2 * size, step)
        step //= 2

    key_sorted = _truncate(engine, columns[0], n)
    payload_sorted = [_truncate(engine, col, n) for col in columns[1:]]
    return key_sorted, payload_sorted


def oblivious_index(
    engine: SecretSharingEngine,
    columns: Sequence[SharedVector],
    indices: SharedVector,
) -> list[SharedVector]:
    """Select the rows at secret ``indices`` from a shared relation.

    This is the oblivious indexing ("select") protocol used in step 6 of the
    hybrid join (§5.3), following Laud's parallel oblivious array access: it
    costs ``O((n + m) log(n + m))`` oblivious operations for ``n`` input rows
    and ``m`` selected indices.  We execute it as an ideal functionality
    (gather on the reconstructed indices) and meter the real protocol's cost.
    """
    if not columns:
        return []
    n = len(columns[0])
    m = len(indices)
    idx_values = AdditiveSharing.reconstruct(indices.shares)
    if m > 0 and (idx_values.min() < 0 or idx_values.max() >= max(n, 1)):
        raise IndexError("oblivious index out of range")

    out: list[SharedVector] = []
    for col in columns:
        gathered = [share[idx_values] for share in col.shares]
        zero = AdditiveSharing.share(np.zeros(m, dtype=np.int64), engine.num_parties, engine.rng)
        out.append(SharedVector(engine, [g + z for g, z in zip(gathered, zero)]))

    # Cost of Laud's protocol: an O((n+m) log(n+m)) routing network over the
    # indices (comparisons), through which every payload column is moved
    # (multiplications per column).
    total = n + m
    ops = int(total * math.ceil(math.log2(total))) if total > 1 else 1
    engine.meter.comparisons += ops
    engine.meter.multiplications += ops * max(1, len(columns))
    engine.network.account_rounds(
        2 * max(1, int(math.ceil(math.log2(total)))) if total > 1 else 1,
        total * Network.SHARE_BYTES,
        messages_per_round=engine.num_parties,
    )
    return out


# -- internals -------------------------------------------------------------------------


def _bitonic_schedule(size: int):
    """Yield (stage_size, step) pairs of a bitonic sorting network."""
    stage = 2
    while stage <= size:
        step = stage // 2
        while step >= 1:
            yield stage, step
            step //= 2
        stage *= 2


def _compare_exchange_pass(
    engine: SecretSharingEngine,
    columns: list[SharedVector],
    size: int,
    stage_size: int,
    step: int,
) -> None:
    """One parallel compare-exchange stage of the bitonic network.

    All comparators of the stage are independent, so they are batched into
    single vectorised comparisons and multiplexes (one network round each),
    exactly as a real secret-sharing backend would batch them.
    """
    low_idx: list[int] = []
    high_idx: list[int] = []
    for i in range(size):
        j = i ^ step
        if j > i:
            ascending = (i & stage_size) == 0
            if ascending:
                low_idx.append(i)
                high_idx.append(j)
            else:
                low_idx.append(j)
                high_idx.append(i)
    if not low_idx:
        return
    low = np.array(low_idx, dtype=np.int64)
    high = np.array(high_idx, dtype=np.int64)

    key = columns[0]
    key_low = _gather(engine, key, low)
    key_high = _gather(engine, key, high)
    # swap needed when key_low > key_high  <=>  key_high < key_low
    swap = engine.less_than(key_high, key_low)

    for c, col in enumerate(columns):
        col_low = _gather(engine, col, low)
        col_high = _gather(engine, col, high)
        new_low = engine.select(swap, col_high, col_low)
        new_high = engine.select(swap, col_low, col_high)
        columns[c] = _scatter(engine, col, low, new_low, high, new_high)


def _gather(engine: SecretSharingEngine, vec: SharedVector, idx: np.ndarray) -> SharedVector:
    return SharedVector(engine, [share[idx] for share in vec.shares])


def _scatter(
    engine: SecretSharingEngine,
    vec: SharedVector,
    low: np.ndarray,
    new_low: SharedVector,
    high: np.ndarray,
    new_high: SharedVector,
) -> SharedVector:
    shares = [share.copy() for share in vec.shares]
    for p in range(len(shares)):
        shares[p][low] = new_low.shares[p]
        shares[p][high] = new_high.shares[p]
    return SharedVector(engine, shares)


def _padded(engine: SecretSharingEngine, vec: SharedVector, pad: int, fill: int) -> SharedVector:
    if pad == 0:
        return SharedVector(engine, [s.copy() for s in vec.shares])
    fill_shares = AdditiveSharing.share(
        np.full(pad, fill, dtype=np.int64), engine.num_parties, engine.rng
    )
    return SharedVector(
        engine, [np.concatenate([s, f]) for s, f in zip(vec.shares, fill_shares)]
    )


def _truncate(engine: SecretSharingEngine, vec: SharedVector, n: int) -> SharedVector:
    return SharedVector(engine, [s[:n] for s in vec.shares])


def _concat_shared(engine: SecretSharingEngine, vectors: Sequence[SharedVector]) -> SharedVector:
    num_parties = engine.num_parties
    shares = [
        np.concatenate([vec.shares[p] for vec in vectors]) for p in range(num_parties)
    ]
    return SharedVector(engine, shares)
