"""Oblivious sub-protocols over secret-shared columns.

These are the building blocks §5.3/§5.4 of the paper talk about: oblivious
shuffles, oblivious (bitonic) sorting networks, Laud-style oblivious
indexing, and oblivious merging of pre-sorted runs.  They operate on lists
of :class:`~repro.mpc.secretshare.SharedVector` columns (one entry per
relation column) so higher layers can treat a secret-shared relation as
"columns + schema".

Like the comparison operators of the engine itself, the sorting network and
the merger are executed as *ideal functionalities*: the engine reconstructs
the key column (acting as the environment), applies the permutation to
whole share vectors at once, reshare-freshens the result, and charges the
meter the full price of the bitonic network — ``O(n log^2 n)`` comparators,
two oblivious multiplexes per comparator per column, and the network's
stage-count worth of rounds.  Only the shuffle moves data through real
resharing rounds; everything row-dependent is batched into whole-vector
operations, so the number of *wire* rounds a distributed execution performs
is independent of the relation size.

Cost characteristics (what the cost meter records):

==============  =============================================
shuffle          O(n) reshared elements per column, one round per party
bitonic sort     O(n log^2 n) oblivious comparisons + the same number of
                 oblivious swaps (multiplications)
oblivious index  O((n + m) log(n + m)) comparisons (Laud's protocol)
oblivious merge  O(n log n) comparisons
==============  =============================================
"""

from __future__ import annotations

from typing import Sequence

import math

import numpy as np

from repro.mpc.estimates import (
    _log2_ceil,
    _stage_count,
    bitonic_comparator_count,
    bitonic_merge_comparator_count,
)
from repro.mpc.network import Network
from repro.mpc.secretshare import SecretSharingEngine, SharedVector


def oblivious_shuffle(
    engine: SecretSharingEngine,
    columns: Sequence[SharedVector],
    permutation: np.ndarray | None = None,
) -> list[SharedVector]:
    """Obliviously shuffle the rows of a shared relation.

    Every party contributes a random permutation in turn and the relation is
    reshared between applications, so no party learns the composite
    permutation.  Functionally we apply a single joint permutation (the
    composition) and meter the cost of the full resharing protocol.
    """
    if not columns:
        return []
    n = len(columns[0])
    for col in columns:
        if len(col) != n:
            raise ValueError("all columns of a relation must have the same length")
    if n == 0:
        return [SharedVector(engine, [s.copy() for s in col.shares]) for col in columns]

    if permutation is None:
        permutation = engine.rng.permutation(n)
    else:
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(n)):
            raise ValueError("permutation must be a permutation of 0..n-1")

    shuffled: list[SharedVector] = []
    for col in columns:
        new_shares = [share[permutation] for share in col.shares]
        # Resharing: add a fresh zero-sharing so old and new shares are
        # unlinkable.
        zero = engine.zero_sharing(n)
        new_shares = [s + z for s, z in zip(new_shares, zero)]
        shuffled.append(SharedVector(engine, new_shares))

    total_elements = n * len(columns)
    engine.meter.shuffled_elements += total_elements
    # One resharing round per party, each moving the full relation.
    engine.network.account_rounds(
        engine.num_parties,
        total_elements * Network.SHARE_BYTES,
        messages_per_round=engine.num_parties,
    )
    return shuffled


def oblivious_sort(
    engine: SecretSharingEngine,
    key: SharedVector,
    payload: Sequence[SharedVector],
) -> tuple[SharedVector, list[SharedVector]]:
    """Sort a shared relation by a shared key column (bitonic network cost).

    Returns the sorted key column and the payload columns reordered in step.
    Executed as an ideal functionality: a stable permutation derived from
    the reconstructed keys is applied to every share vector at once and the
    result is reshare-freshened, while the meter is charged the real
    network's ``O(n log^2 n)`` compare-exchange cost — one oblivious
    comparison plus two multiplexes of every column per comparator.
    """
    payload = list(payload)
    n = len(key)
    if n <= 1:
        return key, payload
    order = np.argsort(engine.env_open(key), kind="stable")
    key_sorted, payload_sorted = _permute_reshared(engine, key, payload, order)
    _meter_network_cost(
        engine,
        comparators=bitonic_comparator_count(n),
        columns=1 + len(payload),
        rounds=3 * _stage_count(n),  # compare + two selects per stage
    )
    return key_sorted, payload_sorted


def oblivious_merge(
    engine: SecretSharingEngine,
    sorted_runs: Sequence[tuple[SharedVector, Sequence[SharedVector]]],
    ascending: bool = True,
) -> tuple[SharedVector, list[SharedVector]]:
    """Obliviously merge several relations that are each sorted by key.

    The merge is a bitonic merger over the concatenation of the runs:
    ``O(n log n)`` comparisons rather than the full ``O(n log^2 n)`` of a
    sort, which is what makes the sort push-up through ``concat`` worthwhile
    (§5.4).
    """
    if not sorted_runs:
        raise ValueError("need at least one run to merge")
    width = len(list(sorted_runs[0][1]))
    for _, payload in sorted_runs:
        if len(list(payload)) != width:
            raise ValueError("all runs must have the same payload width")

    merged_key, merged_payload = sorted_runs[0][0], list(sorted_runs[0][1])
    for next_key, next_payload in sorted_runs[1:]:
        merged_key, merged_payload = _bitonic_merge_two(
            engine, merged_key, merged_payload, next_key, list(next_payload), ascending
        )
    return merged_key, merged_payload


def _bitonic_merge_two(
    engine: SecretSharingEngine,
    key_a: SharedVector,
    payload_a: list[SharedVector],
    key_b: SharedVector,
    payload_b: list[SharedVector],
    ascending: bool = True,
) -> tuple[SharedVector, list[SharedVector]]:
    """Merge two same-direction runs at a single bitonic merge pass's cost.

    A real deployment reverses the second run (a free public permutation)
    so the concatenation is bitonic, then runs one ``O(n log n)`` merge
    network.  Here the concatenated key vector is ordered as an ideal
    functionality — the same stable-argsort-then-reverse rule
    ``Table.sort_by`` uses, so ties land exactly where the cleartext
    engine puts them — and the merge network's cost is metered.
    """
    key = _concat_shared(engine, [key_a, key_b])
    payload = [_concat_shared(engine, [a, b]) for a, b in zip(payload_a, payload_b)]
    n = len(key)
    if n <= 1:
        return key, payload

    order = np.argsort(engine.env_open(key), kind="stable")
    if not ascending:
        order = order[::-1]
    key_sorted, payload_sorted = _permute_reshared(engine, key, payload, order)
    _meter_network_cost(
        engine,
        comparators=bitonic_merge_comparator_count(n),
        columns=1 + len(payload),
        rounds=3 * _log2_ceil(n),
    )
    return key_sorted, payload_sorted


def oblivious_index(
    engine: SecretSharingEngine,
    columns: Sequence[SharedVector],
    indices: SharedVector,
) -> list[SharedVector]:
    """Select the rows at secret ``indices`` from a shared relation.

    This is the oblivious indexing ("select") protocol used in step 6 of the
    hybrid join (§5.3), following Laud's parallel oblivious array access: it
    costs ``O((n + m) log(n + m))`` oblivious operations for ``n`` input rows
    and ``m`` selected indices.  We execute it as an ideal functionality
    (gather on the reconstructed indices) and meter the real protocol's cost.
    """
    if not columns:
        return []
    n = len(columns[0])
    m = len(indices)
    idx_values = engine.env_open(indices)
    if m > 0 and (idx_values.min() < 0 or idx_values.max() >= max(n, 1)):
        raise IndexError("oblivious index out of range")

    out: list[SharedVector] = []
    for col in columns:
        gathered = [share[idx_values] for share in col.shares]
        zero = engine.zero_sharing(m)
        out.append(SharedVector(engine, [g + z for g, z in zip(gathered, zero)]))

    # Cost of Laud's protocol: an O((n+m) log(n+m)) routing network over the
    # indices (comparisons), through which every payload column is moved
    # (multiplications per column).
    total = n + m
    ops = int(total * math.ceil(math.log2(total))) if total > 1 else 1
    engine.meter.comparisons += ops
    engine.meter.multiplications += ops * max(1, len(columns))
    engine.network.account_rounds(
        2 * max(1, int(math.ceil(math.log2(total)))) if total > 1 else 1,
        total * Network.SHARE_BYTES,
        messages_per_round=engine.num_parties,
    )
    return out


# -- internals -------------------------------------------------------------------------


def _permute_reshared(
    engine: SecretSharingEngine,
    key: SharedVector,
    payload: list[SharedVector],
    order: np.ndarray,
) -> tuple[SharedVector, list[SharedVector]]:
    """Apply ``order`` to key + payload share vectors with fresh resharing."""
    n = len(order)
    out: list[SharedVector] = []
    for col in [key, *payload]:
        permuted = [share[order] for share in col.shares]
        zero = engine.zero_sharing(n)
        out.append(SharedVector(engine, [s + z for s, z in zip(permuted, zero)]))
    return out[0], out[1:]


def _meter_network_cost(
    engine: SecretSharingEngine, comparators: int, columns: int, rounds: int
) -> None:
    """Charge the meter for a comparator network executed ideally.

    Each comparator performs one oblivious comparison and two multiplexes
    of every column (a multiplication plus two local share additions each);
    the rounds are the network's stage count — analytic, because no real
    message exchange happens here.
    """
    engine.meter.comparisons += comparators
    engine.meter.multiplications += comparators * 2 * columns
    engine.meter.local_ops += comparators * 4 * columns
    engine.network.account_rounds(rounds, 0, messages_per_round=engine.num_parties)
    engine.network.stats.bytes_sent += comparators * (1 + 2 * columns) * Network.SHARE_BYTES


def _concat_shared(engine: SecretSharingEngine, vectors: Sequence[SharedVector]) -> SharedVector:
    shares = [
        np.concatenate([vec.shares[p] for vec in vectors])
        for p in range(engine.num_local_shares)
    ]
    return SharedVector(engine, shares)
