"""Additive secret sharing over the ring Z_2^64.

This module implements the arithmetic core of a Sharemind-style
secret-sharing MPC backend:

* :class:`AdditiveSharing` — split vectors of 64-bit integers into ``n``
  additive shares and reconstruct them.
* :class:`TripleDealer` — a trusted dealer producing Beaver multiplication
  triples (the standard preprocessing model; Sharemind's protocol set plays
  the same role with resharing-based multiplication).
* :class:`SecretSharingEngine` — the party-facing engine: it holds each
  party's shares, executes additions locally and multiplications with Beaver
  triples over the simulated :class:`~repro.mpc.network.Network`, and counts
  every operation in a :class:`~repro.mpc.runtime.CostMeter`.
* :class:`SharedVector` — a handle to a secret-shared vector of 64-bit
  values, with operator overloads for the supported arithmetic.

Comparisons and equality tests on shares are executed as *ideal
functionalities*: the engine computes the boolean result from the underlying
values (which it can reconstruct, acting as the environment) but charges the
cost meter the realistic price of the corresponding bit-decomposition
protocol.  Addition and multiplication are executed for real — shares are
genuinely random, travel over the simulated network, and reconstruct to the
correct results.  This keeps every query end-to-end *functional* while the
cost accounting stays faithful to a real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mpc.network import Network
from repro.mpc.runtime import CostMeter

#: Number of bits in the secret-sharing ring.
RING_BITS = 64
_U64 = np.uint64


def _to_ring(values: np.ndarray) -> np.ndarray:
    """Map signed/unsigned integers onto the ring Z_2^64 (as uint64)."""
    return np.asarray(values, dtype=np.int64).astype(_U64)


def _from_ring(values: np.ndarray) -> np.ndarray:
    """Map ring elements back to signed 64-bit integers."""
    return np.asarray(values, dtype=_U64).astype(np.int64)


class AdditiveSharing:
    """Stateless helpers for creating and reconstructing additive shares."""

    @staticmethod
    def share(values: np.ndarray, num_parties: int, rng: np.random.Generator) -> list[np.ndarray]:
        """Split ``values`` into ``num_parties`` additive shares.

        Each share is a uniformly random vector in Z_2^64; the element-wise
        sum of all shares equals the input.
        """
        if num_parties < 2:
            raise ValueError("secret sharing requires at least two parties")
        ring_vals = _to_ring(values)
        shares = [
            rng.integers(0, 2**RING_BITS, size=ring_vals.shape, dtype=_U64)
            for _ in range(num_parties - 1)
        ]
        last = ring_vals.copy()
        for share in shares:
            last = last - share  # uint64 arithmetic wraps mod 2^64
        shares.append(last)
        return shares

    @staticmethod
    def reconstruct(shares: Sequence[np.ndarray]) -> np.ndarray:
        """Recombine additive shares into the cleartext (signed) values."""
        if not shares:
            raise ValueError("cannot reconstruct from zero shares")
        total = np.zeros_like(np.asarray(shares[0], dtype=_U64))
        for share in shares:
            total = total + np.asarray(share, dtype=_U64)
        return _from_ring(total)


@dataclass
class BeaverTriple:
    """Shares of a multiplication triple ``c = a * b`` (element-wise)."""

    a_shares: list[np.ndarray]
    b_shares: list[np.ndarray]
    c_shares: list[np.ndarray]


class TripleDealer:
    """Trusted dealer producing Beaver triples for the engine.

    In a deployed Sharemind, multiplication uses a resharing protocol rather
    than dealer-generated triples; the communication pattern (one round, a
    constant number of ring elements per party per multiplication) is the
    same, which is what the cost model measures.
    """

    def __init__(self, num_parties: int, seed: int | None = None):
        self.num_parties = num_parties
        self._rng = np.random.default_rng(seed)

    def triples(self, count: int) -> BeaverTriple:
        """Produce ``count`` element-wise multiplication triples."""
        a = self._rng.integers(0, 2**RING_BITS, size=count, dtype=_U64)
        b = self._rng.integers(0, 2**RING_BITS, size=count, dtype=_U64)
        c = a * b  # wraps mod 2^64
        rng = self._rng
        return BeaverTriple(
            AdditiveSharing.share(_from_ring(a), self.num_parties, rng),
            AdditiveSharing.share(_from_ring(b), self.num_parties, rng),
            AdditiveSharing.share(_from_ring(c), self.num_parties, rng),
        )


class SharedVector:
    """Handle to a secret-shared vector owned by a :class:`SecretSharingEngine`."""

    def __init__(self, engine: "SecretSharingEngine", shares: list[np.ndarray]):
        self._engine = engine
        self._shares = shares

    def __len__(self) -> int:
        return len(self._shares[0])

    @property
    def shares(self) -> list[np.ndarray]:
        return self._shares

    # Arithmetic -------------------------------------------------------------------

    def __add__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.add(self, other)

    def __sub__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.sub(self, other)

    def __mul__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.mul(self, other)

    def reveal(self) -> np.ndarray:
        """Open the vector to all parties (returns signed int64 values)."""
        return self._engine.open(self)


class SecretSharingEngine:
    """Three-party (or n-party) additive secret-sharing execution engine.

    One engine instance models the *joint* MPC execution: it holds every
    party's shares (indexed by party), moves data over the simulated
    network, and meters the work.  The compiler's Sharemind backend drives
    relational protocols on top of this engine.
    """

    def __init__(
        self,
        party_names: Sequence[str],
        seed: int | None = None,
        network: Network | None = None,
        meter: CostMeter | None = None,
    ):
        if len(party_names) < 2:
            raise ValueError("an MPC engine needs at least two parties")
        self.party_names = list(party_names)
        self.num_parties = len(self.party_names)
        self.rng = np.random.default_rng(seed)
        self.network = network or Network(self.party_names)
        self.meter = meter or CostMeter()
        self.dealer = TripleDealer(self.num_parties, seed=None if seed is None else seed + 1)

    # -- communication rounds -----------------------------------------------------------

    def _round(self, tag: str, sends: "list[tuple[str, str, np.ndarray | tuple]]", size_bytes: int) -> dict:
        """Execute one communication round and consume its messages.

        Each ``(sender, receiver, payload)`` message is sent through the
        network (which meters it and, on a socket transport, moves the
        payload between the party processes), the round is closed with a
        barrier, and every message of the round is received back out of the
        queues.  Returns ``{(sender, receiver): payload}`` as *delivered* —
        for the reference party of a real transport these are the bytes that
        actually crossed the process boundary, not the local copies.
        """
        for sender, receiver, payload in sends:
            self.network.send(sender, receiver, (tag, payload), size_bytes)
        self.network.barrier()
        delivered = {}
        for sender, receiver, _payload in sends:
            got_tag, payload = self.network.recv(receiver, sender)
            if got_tag != tag:
                raise RuntimeError(
                    f"protocol desynchronisation: expected a {tag!r} message from "
                    f"{sender!r} to {receiver!r} but received {got_tag!r}"
                )
            delivered[(sender, receiver)] = payload
        return delivered

    def _exchange(self, tag: str, per_party: "list[np.ndarray | tuple]", size_bytes: int) -> list:
        """All-to-all broadcast of one payload per party (one round).

        Returns the payload list as seen by the network's reference party:
        its own entry is the local value, every other entry is the payload
        the reference party received — off the wire when the transport is a
        real one.
        """
        sends = [
            (sender, receiver, per_party[i])
            for i, sender in enumerate(self.party_names)
            for receiver in self.party_names
            if receiver != sender
        ]
        delivered = self._round(tag, sends, size_bytes)
        ref = self.network.reference_party
        return [
            per_party[i] if name == ref else delivered[(name, ref)]
            for i, name in enumerate(self.party_names)
        ]

    # -- share lifecycle ---------------------------------------------------------------

    def input_vector(self, values: np.ndarray, contributor: str | None = None) -> SharedVector:
        """Secret-share a cleartext vector into the MPC.

        ``contributor`` names the party providing the data; it distributes
        one share to every other party (one network round).  Each receiving
        party's share is the payload that was actually delivered to it, so
        on a socket transport the share data genuinely crosses the process
        boundary.
        """
        values = np.asarray(values, dtype=np.int64)
        shares = AdditiveSharing.share(values, self.num_parties, self.rng)
        contributor = contributor or self.party_names[0]
        size = values.size * Network.SHARE_BYTES
        sends = [
            (contributor, name, shares[i])
            for i, name in enumerate(self.party_names)
            if name != contributor
        ]
        delivered = self._round("input-share", sends, size)
        ref = self.network.reference_party
        if ref != contributor:
            shares[self.party_names.index(ref)] = delivered[(contributor, ref)]
        self.meter.input_records += int(values.size)
        return SharedVector(self, shares)

    def constant(self, values: np.ndarray) -> SharedVector:
        """Share a public constant (no communication: party 0 holds it, rest hold 0)."""
        values = np.asarray(values, dtype=np.int64)
        shares = [_to_ring(values)] + [
            np.zeros(values.shape, dtype=_U64) for _ in range(self.num_parties - 1)
        ]
        return SharedVector(self, shares)

    def open(self, vec: SharedVector) -> np.ndarray:
        """Reveal a shared vector to all parties (one broadcast round).

        Every party broadcasts its share; the reconstruction uses the shares
        as delivered, so on a socket transport the opened value depends on
        bytes received from the peer processes.
        """
        size = len(vec) * Network.SHARE_BYTES
        delivered = self._exchange("open-share", list(vec.shares), size)
        self.meter.output_records += len(vec)
        return AdditiveSharing.reconstruct(delivered)

    def reveal_to(self, vec: SharedVector, party: str) -> np.ndarray:
        """Reveal a shared vector to a single party only."""
        if party not in self.party_names:
            # Revealing to an external party (e.g. an STP that is not one of
            # the compute parties) still requires every compute party to send
            # its share to that party; we only meter the traffic.
            self.network.account_rounds(
                1, len(vec) * Network.SHARE_BYTES, messages_per_round=self.num_parties
            )
            self.meter.output_records += len(vec)
            return AdditiveSharing.reconstruct(vec.shares)
        size = len(vec) * Network.SHARE_BYTES
        sends = [
            (name, party, vec.shares[i])
            for i, name in enumerate(self.party_names)
            if name != party
        ]
        delivered = self._round("reveal-share", sends, size)
        party_idx = self.party_names.index(party)
        shares = [
            vec.shares[i] if i == party_idx else delivered[(name, party)]
            for i, name in enumerate(self.party_names)
        ]
        self.meter.output_records += len(vec)
        return AdditiveSharing.reconstruct(shares)

    # -- linear operations (local) ------------------------------------------------------

    def add(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            shares = [l + r for l, r in zip(left.shares, right.shares)]
        else:
            shares = [s.copy() for s in left.shares]
            shares[0] = shares[0] + _U64(np.int64(right).astype(np.uint64))
        self.meter.local_ops += len(left)
        return SharedVector(self, shares)

    def sub(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            shares = [l - r for l, r in zip(left.shares, right.shares)]
        else:
            shares = [s.copy() for s in left.shares]
            shares[0] = shares[0] - _U64(np.int64(right).astype(np.uint64))
        self.meter.local_ops += len(left)
        return SharedVector(self, shares)

    def scale(self, vec: SharedVector, scalar: int) -> SharedVector:
        """Multiply by a public scalar (local)."""
        factor = _U64(np.int64(scalar).astype(np.uint64))
        shares = [s * factor for s in vec.shares]
        self.meter.local_ops += len(vec)
        return SharedVector(self, shares)

    # -- multiplication (interactive, Beaver triples) ------------------------------------

    def mul(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Element-wise multiplication.

        Scalar multiplications are local; share-by-share multiplications use
        one Beaver triple per element and one communication round (all
        elements are batched into the same round, as real frameworks do).
        """
        if not isinstance(right, SharedVector):
            return self.scale(left, int(right))
        self._check_same_engine(right)
        if len(left) != len(right):
            raise ValueError("element-wise multiplication requires equal lengths")
        n = len(left)
        if n == 0:
            return SharedVector(self, [s.copy() for s in left.shares])

        triple = self.dealer.triples(n)
        # d = x - a and e = y - b are opened; z = c + d*b + e*a + d*e.
        d_shares = [l - a for l, a in zip(left.shares, triple.a_shares)]
        e_shares = [r - b for r, b in zip(right.shares, triple.b_shares)]
        # Opening d and e costs one broadcast round of 2 * n elements; the
        # reconstruction sums the (d_i, e_i) pairs as delivered, so on a
        # socket transport the product depends on bytes received from the
        # peer processes.
        size = 2 * n * Network.SHARE_BYTES
        delivered = self._exchange(
            "beaver-open", [(d, e) for d, e in zip(d_shares, e_shares)], size
        )
        d = np.add.reduce(np.stack([pair[0] for pair in delivered]), axis=0)
        e = np.add.reduce(np.stack([pair[1] for pair in delivered]), axis=0)

        out_shares = []
        for i in range(self.num_parties):
            share = triple.c_shares[i] + d * triple.b_shares[i] + e * triple.a_shares[i]
            if i == 0:
                share = share + d * e
            out_shares.append(share)
        self.meter.multiplications += n
        return SharedVector(self, out_shares)

    # -- comparisons (ideal functionality with metered cost) -----------------------------

    def less_than(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Oblivious ``left < right``, returning shares of 0/1 flags."""
        return self._compare(left, right, "lt")

    def equals(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Oblivious ``left == right``, returning shares of 0/1 flags."""
        return self._compare(left, right, "eq")

    def _compare(self, left: SharedVector, right: "SharedVector | int", kind: str) -> SharedVector:
        lvals = AdditiveSharing.reconstruct(left.shares)
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            rvals = AdditiveSharing.reconstruct(right.shares)
            n = len(left)
        else:
            rvals = np.full(len(left), int(right), dtype=np.int64)
            n = len(left)
        if kind == "lt":
            flags = (lvals < rvals).astype(np.int64)
        else:
            flags = (lvals == rvals).astype(np.int64)
        # Cost of a real bit-decomposition comparison: counted as one
        # "comparison" unit plus the round it needs (batched).
        self.meter.comparisons += n
        self.network.account_rounds(1, n * Network.SHARE_BYTES, messages_per_round=self.num_parties)
        shares = AdditiveSharing.share(flags, self.num_parties, self.rng)
        return SharedVector(self, shares)

    def select(self, flag: SharedVector, if_true: SharedVector, if_false: SharedVector) -> SharedVector:
        """Oblivious multiplexer: ``flag*if_true + (1-flag)*if_false``."""
        diff = self.sub(if_true, if_false)
        prod = self.mul(flag, diff)
        return self.add(prod, if_false)

    # -- helpers -------------------------------------------------------------------------

    def _check_same_engine(self, vec: SharedVector) -> None:
        if vec._engine is not self:
            raise ValueError("cannot combine shares from different MPC engines")
