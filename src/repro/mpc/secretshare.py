"""Additive secret sharing over the ring Z_2^64.

This module implements the arithmetic core of a Sharemind-style
secret-sharing MPC backend:

* :class:`AdditiveSharing` — split vectors of 64-bit integers into ``n``
  additive shares and reconstruct them.
* :class:`TripleDealer` — a trusted dealer producing Beaver multiplication
  triples (the standard preprocessing model; Sharemind's protocol set plays
  the same role with resharing-based multiplication).
* :class:`ShareSliceEngine` — the party-facing engine.  An engine instance
  holds the share slices of its *local* parties only; every opening
  (``open``, ``reveal_to``, Beaver ``d``/``e`` openings, the environment
  openings of the ideal-functionality steps) reconstructs from the share
  payloads as *delivered* by the network transport.  On a socket transport
  the foreign slices genuinely arrive off the wire, so a corrupted frame
  corrupts the opened result — the shares are load-bearing, not replicated.
* :class:`SecretSharingEngine` — the all-local specialisation used by the
  single-process simulation: one engine holds every party's slice and plays
  all parties at once.  Its communication schedule is identical to the
  sliced engines', which is what keeps the simulated and distributed
  runtimes byte-identical.
* :class:`SharedVector` — a handle to a secret-shared vector of 64-bit
  values, with operator overloads for the supported arithmetic.

Comparisons and equality tests on shares are executed as *ideal
functionalities*: the engine opens the operands to the protocol environment
(one real ``env-open`` broadcast round, so the opened values depend on wire
bytes) and charges the cost meter the realistic price of the corresponding
bit-decomposition protocol.  Addition and multiplication are executed for
real — shares are genuinely random, travel over the network, and
reconstruct to the correct results.  This keeps every query end-to-end
*functional* while the cost accounting stays faithful to a real deployment.

Lockstep (SPMD) execution model
-------------------------------

Every engine — sliced or all-local — executes the *full* global message
schedule of each round: a sliced engine passes ``None`` placeholders for
payloads it does not hold, and the transport substitutes the peer's real
frame wherever the local party is the receiver.  Because the schedule,
sizes and barriers are identical everywhere, ``NetworkStats`` and the cost
meter agree across all engines and across transports.

Randomness is partitioned into streams so sliced engines stay in lockstep:

* ``engine.rng`` — the shared environment stream (permutations, zero
  sharings, reshares of env-opened values, public input sharings).  Every
  engine draws from it at the same points, so it never desynchronises.
* ``engine.dealer`` — the trusted triple dealer, likewise replicated.
  This is a modelling trust boundary: a deployed system would produce
  triples with OT-based preprocessing so no party knows a full triple.
* per-contributor input streams — used only for *private* inputs, and only
  drawn by engines that actually hold the contributor's cleartext (the
  contributor's own agent, or the all-local simulation).  Non-contributors
  never see the cleartext or the sharing randomness; their slice is the
  frame delivered over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mpc.network import Network
from repro.mpc.runtime import CostMeter

#: Number of bits in the secret-sharing ring.
RING_BITS = 64
_U64 = np.uint64


def _to_ring(values: np.ndarray) -> np.ndarray:
    """Map signed/unsigned integers onto the ring Z_2^64 (as uint64)."""
    return np.asarray(values, dtype=np.int64).astype(_U64)


def _from_ring(values: np.ndarray) -> np.ndarray:
    """Map ring elements back to signed 64-bit integers."""
    return np.asarray(values, dtype=_U64).astype(np.int64)


class AdditiveSharing:
    """Stateless helpers for creating and reconstructing additive shares."""

    @staticmethod
    def share(values: np.ndarray, num_parties: int, rng: np.random.Generator) -> list[np.ndarray]:
        """Split ``values`` into ``num_parties`` additive shares.

        Each share is a uniformly random vector in Z_2^64; the element-wise
        sum of all shares equals the input.
        """
        if num_parties < 2:
            raise ValueError("secret sharing requires at least two parties")
        ring_vals = _to_ring(values)
        shares = [
            rng.integers(0, 2**RING_BITS, size=ring_vals.shape, dtype=_U64)
            for _ in range(num_parties - 1)
        ]
        last = ring_vals.copy()
        for share in shares:
            last = last - share  # uint64 arithmetic wraps mod 2^64
        shares.append(last)
        return shares

    @staticmethod
    def reconstruct(shares: Sequence[np.ndarray]) -> np.ndarray:
        """Recombine additive shares into the cleartext (signed) values."""
        if not shares:
            raise ValueError("cannot reconstruct from zero shares")
        total = np.zeros_like(np.asarray(shares[0], dtype=_U64))
        for share in shares:
            total = total + np.asarray(share, dtype=_U64)
        return _from_ring(total)


@dataclass
class BeaverTriple:
    """Shares of a multiplication triple ``c = a * b`` (element-wise)."""

    a_shares: list[np.ndarray]
    b_shares: list[np.ndarray]
    c_shares: list[np.ndarray]


class TripleDealer:
    """Trusted dealer producing Beaver triples for the engine.

    In a deployed Sharemind, multiplication uses a resharing protocol rather
    than dealer-generated triples; the communication pattern (one round, a
    constant number of ring elements per party per multiplication) is the
    same, which is what the cost model measures.  The dealer stream is
    replicated into every engine so lockstep executions agree — see the
    module docstring for the trust boundary this implies.
    """

    def __init__(self, num_parties: int, seed=None):
        self.num_parties = num_parties
        self._rng = np.random.default_rng(seed)

    def triples(self, count: int) -> BeaverTriple:
        """Produce ``count`` element-wise multiplication triples."""
        a = self._rng.integers(0, 2**RING_BITS, size=count, dtype=_U64)
        b = self._rng.integers(0, 2**RING_BITS, size=count, dtype=_U64)
        c = a * b  # wraps mod 2^64
        rng = self._rng
        return BeaverTriple(
            AdditiveSharing.share(_from_ring(a), self.num_parties, rng),
            AdditiveSharing.share(_from_ring(b), self.num_parties, rng),
            AdditiveSharing.share(_from_ring(c), self.num_parties, rng),
        )


class SharedVector:
    """Handle to a secret-shared vector owned by a :class:`ShareSliceEngine`.

    ``shares`` holds only the slices the owning engine's local parties hold,
    in global party order restricted to the local parties.  For the
    all-local :class:`SecretSharingEngine` that is every party's slice (the
    historical behaviour); for a one-party agent engine it is a single
    slice, and no other party's share material exists in the process.
    """

    def __init__(self, engine: "ShareSliceEngine", shares: list[np.ndarray]):
        self._engine = engine
        self._shares = shares

    def __len__(self) -> int:
        if not self._shares:
            return 0
        return len(self._shares[0])

    @property
    def shares(self) -> list[np.ndarray]:
        return self._shares

    # Arithmetic -------------------------------------------------------------------

    def __add__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.add(self, other)

    def __sub__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.sub(self, other)

    def __mul__(self, other: "SharedVector | int") -> "SharedVector":
        return self._engine.mul(self, other)

    def reveal(self) -> np.ndarray:
        """Open the vector to all parties (returns signed int64 values)."""
        return self._engine.open(self)


class ShareSliceEngine:
    """n-party additive secret-sharing engine holding per-party share slices.

    ``local_parties`` selects which parties' slices this engine instance
    materialises.  Every engine executes the same global communication
    schedule (SPMD lockstep); payloads the engine does not hold are sent as
    ``None`` placeholders, and openings reconstruct from the payloads the
    transport *delivered* — which, on a socket transport, are the frames
    read off the peer connections.
    """

    def __init__(
        self,
        party_names: Sequence[str],
        seed: int | None = None,
        network: Network | None = None,
        meter: CostMeter | None = None,
        local_parties: Sequence[str] | None = None,
    ):
        if len(party_names) < 2:
            raise ValueError("an MPC engine needs at least two parties")
        self.party_names = list(party_names)
        self.num_parties = len(self.party_names)
        if local_parties is None:
            local = set(self.party_names)
        else:
            local = set(local_parties)
            unknown = local - set(self.party_names)
            if unknown:
                raise ValueError(
                    f"local parties {sorted(unknown)} are not compute parties "
                    f"of this engine ({self.party_names})"
                )
        self.local_parties = local
        #: Global indices of the parties whose slices this engine holds.
        self.local_indices = [
            i for i, name in enumerate(self.party_names) if name in local
        ]
        self._local_pos = {i: pos for pos, i in enumerate(self.local_indices)}
        self.num_local_shares = len(self.local_indices)
        # Shared environment stream: drawn identically by every engine.
        self.rng = np.random.default_rng(seed)
        self.network = network or Network(self.party_names)
        self.meter = meter or CostMeter()
        self.dealer = TripleDealer(self.num_parties, seed=None if seed is None else seed + 1)
        # Per-contributor private-input streams: stream i is drawn only by
        # engines that hold party i's cleartext input (party i's own agent,
        # or the all-local simulation engine).
        self._input_rngs = [
            np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(0x51, i)))
            for i in range(self.num_parties)
        ]

    @property
    def is_all_local(self) -> bool:
        return self.num_local_shares == self.num_parties

    @property
    def held_share_parties(self) -> tuple[str, ...]:
        """Names of the parties whose share slices this engine materialises."""
        return tuple(self.party_names[i] for i in self.local_indices)

    # -- communication rounds -----------------------------------------------------------

    def _round(self, tag: str, sends: "list[tuple[str, str, np.ndarray | tuple | None]]", size_bytes: int) -> dict:
        """Execute one communication round and consume its messages.

        Each ``(sender, receiver, payload)`` message is sent through the
        network (which meters it and, on a socket transport, moves the
        payload between the party processes), the round is closed with a
        barrier, and every message of the round is received back out of the
        queues.  Returns ``{(sender, receiver): payload}`` as *delivered* —
        for the local party of a real transport these are the bytes that
        actually crossed the process boundary, not the local copies.  A
        sliced engine sends ``None`` placeholders for foreign payloads; the
        placeholders only ever surface for (sender, receiver) pairs that are
        both remote, whose payloads no local computation consumes.
        """
        for sender, receiver, payload in sends:
            self.network.send(sender, receiver, (tag, payload), size_bytes)
        self.network.barrier()
        delivered = {}
        for sender, receiver, _payload in sends:
            got_tag, payload = self.network.recv(receiver, sender)
            if got_tag != tag:
                raise RuntimeError(
                    f"protocol desynchronisation: expected a {tag!r} message from "
                    f"{sender!r} to {receiver!r} but received {got_tag!r}"
                )
            delivered[(sender, receiver)] = payload
        return delivered

    def _exchange(self, tag: str, per_party: "list[np.ndarray | tuple | None]", size_bytes: int) -> list:
        """All-to-all broadcast of one payload per party (one round).

        Returns the payload list as seen by the network's reference party:
        its own entry is the local value, every other entry is the payload
        the reference party received — off the wire when the transport is a
        real one.
        """
        sends = [
            (sender, receiver, per_party[i])
            for i, sender in enumerate(self.party_names)
            for receiver in self.party_names
            if receiver != sender
        ]
        delivered = self._round(tag, sends, size_bytes)
        ref = self.network.reference_party
        return [
            per_party[i] if name == ref else delivered[(name, ref)]
            for i, name in enumerate(self.party_names)
        ]

    def _slices_to_global(self, vec: SharedVector) -> list:
        """Expand local slices to a per-party payload list (None for foreign)."""
        out: list = [None] * self.num_parties
        for i in self.local_indices:
            out[i] = vec.shares[self._local_pos[i]]
        return out

    def _reconstruct_delivered(self, delivered: Sequence) -> np.ndarray:
        entries = []
        for i, payload in enumerate(delivered):
            if payload is None:
                raise RuntimeError(
                    f"cannot reconstruct: no share slice delivered for party "
                    f"{self.party_names[i]!r} (engine holds "
                    f"{sorted(self.local_parties)})"
                )
            entries.append(payload)
        return AdditiveSharing.reconstruct(entries)

    def _require_local(self) -> None:
        if self.num_local_shares == 0:
            raise RuntimeError(
                "this engine holds no share slices (its agent's party is not "
                "one of the MPC compute parties) and cannot run MPC primitives"
            )

    # -- share lifecycle ---------------------------------------------------------------

    def input_vector(
        self,
        values: np.ndarray | None = None,
        contributor: str | None = None,
        num_rows: int | None = None,
        public: bool = False,
    ) -> SharedVector:
        """Secret-share a cleartext vector into the MPC.

        ``contributor`` names the party providing the data; it distributes
        one share to every other party (one network round).  Each receiving
        party's share is the payload that was actually delivered to it, so
        on a socket transport the share data genuinely crosses the process
        boundary.

        Engines that do not hold the contributor's cleartext pass
        ``values=None`` and ``num_rows`` (the row count is public metadata);
        their slice comes exclusively off the wire.  ``public=True`` marks a
        value already known to every party (hybrid-protocol intermediates):
        the sharing randomness then comes from the shared environment stream
        so all lockstep engines stay synchronised.
        """
        self._require_local()
        contributor = contributor or self.party_names[0]
        if contributor not in self.party_names:
            raise KeyError(f"unknown contributor {contributor!r}")
        c_idx = self.party_names.index(contributor)
        if values is not None:
            values = np.asarray(values, dtype=np.int64)
            n = int(values.size)
        else:
            if num_rows is None:
                raise ValueError("input_vector needs values or a public num_rows")
            n = int(num_rows)

        full: list[np.ndarray] | None = None
        if public:
            if values is None:
                raise ValueError("a public input requires values at every party")
            full = AdditiveSharing.share(values, self.num_parties, self.rng)
        elif values is not None:
            full = AdditiveSharing.share(values, self.num_parties, self._input_rngs[c_idx])
        elif c_idx in self._local_pos:
            raise ValueError(
                f"engine holds contributor {contributor!r} but got no values"
            )

        size = n * Network.SHARE_BYTES
        sends = [
            (contributor, name, None if full is None else full[i])
            for i, name in enumerate(self.party_names)
            if name != contributor
        ]
        delivered = self._round("input-share", sends, size)
        local_shares = []
        for i in self.local_indices:
            name = self.party_names[i]
            if i == c_idx:
                local_shares.append(full[c_idx])
            else:
                got = delivered[(contributor, name)]
                if got is None:
                    # In-process delivery of a sharing this engine computed
                    # itself (all-local simulation without a wire).
                    got = full[i]
                local_shares.append(got)
        self.meter.input_records += n
        return SharedVector(self, local_shares)

    def constant(self, values: np.ndarray) -> SharedVector:
        """Share a public constant (no communication: party 0 holds it, rest hold 0)."""
        self._require_local()
        values = np.asarray(values, dtype=np.int64)
        shares = [
            _to_ring(values) if i == 0 else np.zeros(values.shape, dtype=_U64)
            for i in self.local_indices
        ]
        return SharedVector(self, shares)

    def empty_vector(self) -> SharedVector:
        """A zero-length shared vector (one empty slice per local party)."""
        self._require_local()
        return SharedVector(
            self, [np.empty(0, dtype=_U64) for _ in range(self.num_local_shares)]
        )

    def zero_sharing(self, n: int) -> list[np.ndarray]:
        """Local slices of a fresh sharing of the zero vector.

        Drawn from the shared environment stream: every lockstep engine
        draws the identical full sharing and keeps its own slices, so the
        resharing stays synchronised without communication.
        """
        full = AdditiveSharing.share(
            np.zeros(int(n), dtype=np.int64), self.num_parties, self.rng
        )
        return [full[i] for i in self.local_indices]

    def share_from_env(self, values: np.ndarray) -> SharedVector:
        """Share values known to the protocol environment (every party).

        Used by the ideal-functionality steps to re-share a result they
        computed on env-opened data; the randomness comes from the shared
        environment stream, keeping lockstep engines synchronised.
        """
        self._require_local()
        full = AdditiveSharing.share(
            np.asarray(values, dtype=np.int64), self.num_parties, self.rng
        )
        return SharedVector(self, [full[i] for i in self.local_indices])

    # -- openings ----------------------------------------------------------------------

    def open(self, vec: SharedVector) -> np.ndarray:
        """Reveal a shared vector to all parties (one broadcast round).

        Every party broadcasts its slice; the reconstruction uses the shares
        as delivered, so on a socket transport the opened value depends on
        bytes received from the peer processes.
        """
        size = len(vec) * Network.SHARE_BYTES
        delivered = self._exchange("open-share", self._slices_to_global(vec), size)
        self.meter.output_records += len(vec)
        return self._reconstruct_delivered(delivered)

    def env_open_many(self, vecs: Sequence[SharedVector]) -> list[np.ndarray]:
        """Open vectors to the protocol *environment* (one batched round).

        The ideal-functionality steps (comparisons, sort keys, oblivious
        index positions, aggregation boundaries, fixed-point truncation) run
        on cleartext the environment reconstructs.  Historically that
        reconstruction was a local array sum over replicated state; with
        share slices it is a real broadcast round — all vectors batched into
        one exchange — so the environment's view, too, is built from wire
        bytes.  The realistic protocol cost of each step is still charged
        separately by its caller; this round's traffic is metered like any
        other exchange.  No ``output_records`` are counted: nothing is
        revealed to the *parties* beyond what the ideal functionality allows.
        """
        vecs = list(vecs)
        if not vecs:
            return []
        per_party: list = []
        for i in range(self.num_parties):
            if i in self._local_pos:
                pos = self._local_pos[i]
                per_party.append(tuple(vec.shares[pos] for vec in vecs))
            else:
                per_party.append(None)
        size = sum(len(v) for v in vecs) * Network.SHARE_BYTES
        delivered = self._exchange("env-open", per_party, size)
        results = []
        for k in range(len(vecs)):
            entries = []
            for i, payload in enumerate(delivered):
                if payload is None:
                    raise RuntimeError(
                        f"env-open missing the slice of party {self.party_names[i]!r}"
                    )
                entries.append(payload[k])
            results.append(AdditiveSharing.reconstruct(entries))
        return results

    def env_open(self, vec: SharedVector) -> np.ndarray:
        """Open one vector to the protocol environment (see ``env_open_many``)."""
        return self.env_open_many([vec])[0]

    def reveal_to(self, vec: SharedVector, party: str) -> np.ndarray | None:
        """Reveal a shared vector to a single party only.

        Returns the values at engines that hold the target party's slice and
        ``None`` everywhere else — non-targets ship their slice and learn
        nothing.  Revealing to an *external* party (e.g. an STP that is not
        one of the compute parties) opens the vector to the environment (one
        real round) and meters the extra external leg.
        """
        if party not in self.party_names:
            values = self.env_open(vec)
            self.network.account_rounds(
                1, len(vec) * Network.SHARE_BYTES, messages_per_round=self.num_parties
            )
            self.meter.output_records += len(vec)
            return values
        size = len(vec) * Network.SHARE_BYTES
        party_idx = self.party_names.index(party)
        sends = []
        for i, name in enumerate(self.party_names):
            if name == party:
                continue
            payload = vec.shares[self._local_pos[i]] if i in self._local_pos else None
            sends.append((name, party, payload))
        delivered = self._round("reveal-share", sends, size)
        self.meter.output_records += len(vec)
        if party_idx not in self._local_pos:
            return None
        shares = []
        for i, name in enumerate(self.party_names):
            if i == party_idx:
                shares.append(vec.shares[self._local_pos[party_idx]])
            else:
                got = delivered[(name, party)]
                if got is None:
                    raise RuntimeError(
                        f"reveal to {party!r} missing the slice of {name!r}"
                    )
                shares.append(got)
        return AdditiveSharing.reconstruct(shares)

    def reveal_replicated(self, vec: SharedVector) -> np.ndarray:
        """Reveal a vector to *every* engine (one broadcast round, metered).

        The hybrid protocols replicate a semi-trusted party's computation at
        every agent, so a value "revealed to the STP" must materialise
        everywhere the replicated STP logic runs.  This is an explicit,
        documented widening of the reveal — callers use it only where the
        protocol's trust model already discloses the values.
        """
        size = len(vec) * Network.SHARE_BYTES
        delivered = self._exchange("reveal-replicated", self._slices_to_global(vec), size)
        self.meter.output_records += len(vec)
        return self._reconstruct_delivered(delivered)

    # -- linear operations (local) ------------------------------------------------------

    def add(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            shares = [l + r for l, r in zip(left.shares, right.shares)]
        else:
            shares = [s.copy() for s in left.shares]
            if 0 in self._local_pos:
                pos = self._local_pos[0]
                shares[pos] = shares[pos] + _U64(np.int64(right).astype(np.uint64))
        self.meter.local_ops += len(left)
        return SharedVector(self, shares)

    def sub(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            shares = [l - r for l, r in zip(left.shares, right.shares)]
        else:
            shares = [s.copy() for s in left.shares]
            if 0 in self._local_pos:
                pos = self._local_pos[0]
                shares[pos] = shares[pos] - _U64(np.int64(right).astype(np.uint64))
        self.meter.local_ops += len(left)
        return SharedVector(self, shares)

    def scale(self, vec: SharedVector, scalar: int) -> SharedVector:
        """Multiply by a public scalar (local)."""
        factor = _U64(np.int64(scalar).astype(np.uint64))
        shares = [s * factor for s in vec.shares]
        self.meter.local_ops += len(vec)
        return SharedVector(self, shares)

    # -- multiplication (interactive, Beaver triples) ------------------------------------

    def mul(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Element-wise multiplication.

        Scalar multiplications are local; share-by-share multiplications use
        one Beaver triple per element and one communication round (all
        elements are batched into the same round, as real frameworks do).
        """
        if not isinstance(right, SharedVector):
            return self.scale(left, int(right))
        self._check_same_engine(right)
        if len(left) != len(right):
            raise ValueError("element-wise multiplication requires equal lengths")
        n = len(left)
        if n == 0:
            return SharedVector(self, [s.copy() for s in left.shares])

        triple = self.dealer.triples(n)
        # d = x - a and e = y - b are opened; z = c + d*b + e*a + d*e.
        # Each engine computes d/e only for its local slices; the foreign
        # (d_i, e_i) pairs arrive as wire frames.
        per_party: list = []
        for i in range(self.num_parties):
            if i in self._local_pos:
                pos = self._local_pos[i]
                d_i = left.shares[pos] - triple.a_shares[i]
                e_i = right.shares[pos] - triple.b_shares[i]
                per_party.append((d_i, e_i))
            else:
                per_party.append(None)
        # Opening d and e costs one broadcast round of 2 * n elements; the
        # reconstruction sums the (d_i, e_i) pairs as delivered, so on a
        # socket transport the product depends on bytes received from the
        # peer processes.
        size = 2 * n * Network.SHARE_BYTES
        delivered = self._exchange("beaver-open", per_party, size)
        d = np.zeros(n, dtype=_U64)
        e = np.zeros(n, dtype=_U64)
        for i, pair in enumerate(delivered):
            if pair is None:
                raise RuntimeError(
                    f"beaver opening missing the slice of {self.party_names[i]!r}"
                )
            d = d + np.asarray(pair[0], dtype=_U64)
            e = e + np.asarray(pair[1], dtype=_U64)

        out_shares = []
        for i in self.local_indices:
            share = triple.c_shares[i] + d * triple.b_shares[i] + e * triple.a_shares[i]
            if i == 0:
                share = share + d * e
            out_shares.append(share)
        self.meter.multiplications += n
        return SharedVector(self, out_shares)

    # -- comparisons (ideal functionality with metered cost) -----------------------------

    def less_than(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Oblivious ``left < right``, returning shares of 0/1 flags."""
        return self._compare(left, right, "lt")

    def equals(self, left: SharedVector, right: "SharedVector | int") -> SharedVector:
        """Oblivious ``left == right``, returning shares of 0/1 flags."""
        return self._compare(left, right, "eq")

    def _compare(self, left: SharedVector, right: "SharedVector | int", kind: str) -> SharedVector:
        n = len(left)
        if isinstance(right, SharedVector):
            self._check_same_engine(right)
            lvals, rvals = self.env_open_many([left, right])
        else:
            lvals = self.env_open(left)
            rvals = np.full(n, int(right), dtype=np.int64)
        if kind == "lt":
            flags = (lvals < rvals).astype(np.int64)
        else:
            flags = (lvals == rvals).astype(np.int64)
        # Cost of a real bit-decomposition comparison: counted as one
        # "comparison" unit plus the round it needs (batched).
        self.meter.comparisons += n
        self.network.account_rounds(1, n * Network.SHARE_BYTES, messages_per_round=self.num_parties)
        return self.share_from_env(flags)

    def select(self, flag: SharedVector, if_true: SharedVector, if_false: SharedVector) -> SharedVector:
        """Oblivious multiplexer: ``flag*if_true + (1-flag)*if_false``."""
        diff = self.sub(if_true, if_false)
        prod = self.mul(flag, diff)
        return self.add(prod, if_false)

    # -- helpers -------------------------------------------------------------------------

    def _check_same_engine(self, vec: SharedVector) -> None:
        if vec._engine is not self:
            raise ValueError("cannot combine shares from different MPC engines")


class SecretSharingEngine(ShareSliceEngine):
    """All-local engine: one instance holds every party's share slice.

    This is the single-process simulation's engine (and the historical
    API): ``SharedVector.shares`` exposes all ``num_parties`` slices and
    :meth:`AdditiveSharing.reconstruct` applies to them directly.  Its
    communication schedule is identical to the sliced engines', which keeps
    the simulated and distributed runtimes byte-for-byte interchangeable.
    """

    def __init__(
        self,
        party_names: Sequence[str],
        seed: int | None = None,
        network: Network | None = None,
        meter: CostMeter | None = None,
    ):
        super().__init__(party_names, seed=seed, network=network, meter=meter, local_parties=None)
