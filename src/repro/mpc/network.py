"""Party-to-party network with pluggable transports.

MPC protocols are communication-bound: secret-sharing multiplications need a
message exchange, oblivious shuffles reshare whole relations, and garbled
circuits ship megabytes of truth tables.  The real Conclave prototype pays
these costs on actual datacentre links; here every transfer goes through a
:class:`Network` object that records messages, bytes, and *rounds* (batches
of messages that could be sent in parallel), so the cost models in
:mod:`repro.mpc.runtime` can reconstruct realistic wall-clock times.

Delivery is delegated to a :class:`~repro.runtime.transport.Transport`:

* the default :class:`~repro.runtime.transport.SimulatedTransport` keeps the
  original single-process queues (accounting is byte-for-byte identical to
  the pre-transport ``Network``);
* a :class:`~repro.runtime.transport.SocketTransport` endpoint, used by the
  distributed runtime, routes every message between two distinct parties
  over a real TCP connection between per-party OS processes.

Accounting always happens here, before delivery, so the recorded traffic is
identical whichever transport carries it.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.transport import (
    Message,
    NetworkStats,
    SimulatedTransport,
    Transport,
)

__all__ = ["Message", "Network", "NetworkStats"]


class Network:
    """Message fabric connecting the computing parties.

    Parties address each other by name.  ``send`` delivers a message through
    the transport; ``recv`` pops the oldest message for a receiver
    (optionally filtered by sender).  ``barrier`` marks the end of a
    communication round: all messages sent since the previous barrier are
    assumed to travel in parallel, so they contribute a single round-trip
    latency to the cost model regardless of how many parties exchanged data.
    """

    #: Wire size of one 64-bit field element (share), in bytes.
    SHARE_BYTES = 8

    def __init__(self, party_names: list[str], transport: Transport | None = None):
        if len(set(party_names)) != len(party_names):
            raise ValueError("party names must be unique")
        self.party_names = list(party_names)
        if transport is None:
            transport = SimulatedTransport(self.party_names)
        elif list(transport.party_names) != self.party_names:
            raise ValueError(
                f"transport parties {transport.party_names} do not match the "
                f"network parties {self.party_names}"
            )
        self.transport = transport
        self.stats = NetworkStats()
        self._sent_since_barrier = 0

    @property
    def reference_party(self) -> str:
        """The party whose view of received payloads this endpoint exposes.

        For the in-process transport every party's view is available and the
        first party is used by convention; a socket endpoint embodies one
        specific party, whose inbound payloads arrive off the wire.
        """
        return self.transport.reference_party

    def send(self, sender: str, receiver: str, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` from ``sender`` to ``receiver``."""
        self._check_party(sender)
        self._check_party(receiver)
        if sender == receiver:
            raise ValueError("a party cannot send a network message to itself")
        msg = Message(sender, receiver, payload, int(size_bytes))
        self.stats.messages += 1
        self.stats.bytes_sent += int(size_bytes)
        self._sent_since_barrier += 1
        self.transport.deliver(msg)

    def recv(self, receiver: str, sender: str | None = None) -> Any:
        """Receive the oldest pending message for ``receiver``.

        If ``sender`` is given, the oldest message from that sender is
        returned instead.  Raises ``LookupError`` if nothing is pending.
        """
        self._check_party(receiver)
        return self.transport.pop(receiver, sender).payload

    def broadcast(self, sender: str, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` from ``sender`` to every other party."""
        for receiver in self.party_names:
            if receiver != sender:
                self.send(sender, receiver, payload, size_bytes)

    def barrier(self) -> None:
        """Mark the end of a communication round.

        Barriers delimit *real* message exchanges, so they are the only
        place ``wire_rounds`` advances — analytically accounted rounds
        (:meth:`account_rounds`) raise the cost model's ``rounds`` without
        implying a synchronous mesh round trip.
        """
        if self._sent_since_barrier > 0:
            self.stats.rounds += 1
            self.stats.wire_rounds += 1
            self._sent_since_barrier = 0

    def pending(self, receiver: str) -> int:
        """Number of undelivered messages addressed to ``receiver``."""
        self._check_party(receiver)
        return self.transport.pending(receiver)

    def account_rounds(self, rounds: int, bytes_per_round: int, messages_per_round: int = 1) -> None:
        """Record traffic analytically without materialising messages.

        Used by the cost-estimation paths of the protocols for data sizes
        where executing the real share exchanges would be needlessly slow.
        """
        if rounds < 0 or bytes_per_round < 0:
            raise ValueError("rounds and bytes must be non-negative")
        self.stats.rounds += int(rounds)
        self.stats.messages += int(rounds) * int(messages_per_round)
        self.stats.bytes_sent += int(rounds) * int(bytes_per_round)

    def reset_stats(self) -> None:
        self.stats.reset()
        self._sent_since_barrier = 0

    def _check_party(self, name: str) -> None:
        if name not in self.party_names:
            raise KeyError(f"unknown party {name!r}; known parties: {self.party_names}")
