"""Simulated party-to-party network.

MPC protocols are communication-bound: secret-sharing multiplications need a
message exchange, oblivious shuffles reshare whole relations, and garbled
circuits ship megabytes of truth tables.  The real Conclave prototype pays
these costs on actual datacentre links; here every transfer goes through a
:class:`Network` object that records messages, bytes, and *rounds* (batches
of messages that could be sent in parallel), so the cost models in
:mod:`repro.mpc.runtime` can reconstruct realistic wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one protocol execution."""

    messages: int = 0
    bytes_sent: int = 0
    rounds: int = 0

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.rounds += other.rounds

    def copy(self) -> "NetworkStats":
        return NetworkStats(self.messages, self.bytes_sent, self.rounds)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.rounds = 0


@dataclass
class Message:
    """A single message in flight between two parties."""

    sender: str
    receiver: str
    payload: Any
    size_bytes: int


class Network:
    """In-process message fabric connecting the computing parties.

    Parties address each other by name.  ``send`` enqueues a message;
    ``recv`` pops the oldest message for a receiver (optionally filtered by
    sender).  ``barrier`` marks the end of a communication round: all
    messages sent since the previous barrier are assumed to travel in
    parallel, so they contribute a single round-trip latency to the cost
    model regardless of how many parties exchanged data.
    """

    #: Wire size of one 64-bit field element (share), in bytes.
    SHARE_BYTES = 8

    def __init__(self, party_names: list[str]):
        if len(set(party_names)) != len(party_names):
            raise ValueError("party names must be unique")
        self.party_names = list(party_names)
        self._queues: dict[str, list[Message]] = {p: [] for p in party_names}
        self.stats = NetworkStats()
        self._sent_since_barrier = 0

    def send(self, sender: str, receiver: str, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` from ``sender`` to ``receiver``."""
        self._check_party(sender)
        self._check_party(receiver)
        if sender == receiver:
            raise ValueError("a party cannot send a network message to itself")
        msg = Message(sender, receiver, payload, int(size_bytes))
        self._queues[receiver].append(msg)
        self.stats.messages += 1
        self.stats.bytes_sent += int(size_bytes)
        self._sent_since_barrier += 1

    def recv(self, receiver: str, sender: str | None = None) -> Any:
        """Receive the oldest pending message for ``receiver``.

        If ``sender`` is given, the oldest message from that sender is
        returned instead.  Raises ``LookupError`` if nothing is pending.
        """
        self._check_party(receiver)
        queue = self._queues[receiver]
        for i, msg in enumerate(queue):
            if sender is None or msg.sender == sender:
                queue.pop(i)
                return msg.payload
        raise LookupError(f"no pending message for {receiver!r} from {sender!r}")

    def broadcast(self, sender: str, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` from ``sender`` to every other party."""
        for receiver in self.party_names:
            if receiver != sender:
                self.send(sender, receiver, payload, size_bytes)

    def barrier(self) -> None:
        """Mark the end of a communication round."""
        if self._sent_since_barrier > 0:
            self.stats.rounds += 1
            self._sent_since_barrier = 0

    def pending(self, receiver: str) -> int:
        """Number of undelivered messages addressed to ``receiver``."""
        return len(self._queues[receiver])

    def account_rounds(self, rounds: int, bytes_per_round: int, messages_per_round: int = 1) -> None:
        """Record traffic analytically without materialising messages.

        Used by the cost-estimation paths of the protocols for data sizes
        where executing the real share exchanges would be needlessly slow.
        """
        if rounds < 0 or bytes_per_round < 0:
            raise ValueError("rounds and bytes must be non-negative")
        self.stats.rounds += int(rounds)
        self.stats.messages += int(rounds) * int(messages_per_round)
        self.stats.bytes_sent += int(rounds) * int(bytes_per_round)

    def reset_stats(self) -> None:
        self.stats.reset()
        self._sent_since_barrier = 0

    def _check_party(self, name: str) -> None:
        if name not in self._queues:
            raise KeyError(f"unknown party {name!r}; known parties: {self.party_names}")
