"""Analytic cost formulas for the oblivious operators.

The functional protocols in :mod:`repro.mpc.protocols` meter the work they
actually perform.  For benchmark sweeps that reach millions or billions of
records (Figures 1 and 4–7 of the paper) executing Python share arithmetic
would be pointlessly slow, so the plan-level cost estimator
(:mod:`repro.core.estimator`) uses these closed-form operation counts
instead.  The formulas mirror the implemented protocols one-to-one — the
tests in ``tests/test_estimates.py`` check that a functional execution's
meter matches the analytic count for small inputs — so large-scale numbers
are extrapolations of the very code paths that run at small scale.
"""

from __future__ import annotations

import math

from repro.mpc.network import Network, NetworkStats
from repro.mpc.runtime import CostMeter


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


def bitonic_comparator_count(n: int) -> int:
    """Number of compare-exchange operations of a bitonic sort of ``n`` items.

    The network pads to the next power of two; each of the
    ``k*(k+1)/2`` stages (k = log2 size) has ``size/2`` comparators.
    """
    if n <= 1:
        return 0
    size = 1 << math.ceil(math.log2(n))
    k = int(math.log2(size))
    stages = k * (k + 1) // 2
    return stages * (size // 2)


def bitonic_merge_comparator_count(n: int) -> int:
    """Comparators of a single bitonic merge pass over ``n`` items."""
    if n <= 1:
        return 0
    size = 1 << math.ceil(math.log2(n))
    k = int(math.log2(size))
    return k * (size // 2)


def share_input_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of secret-sharing ``records`` x ``columns`` values into the MPC."""
    meter = CostMeter(input_records=records * columns)
    meter.network = NetworkStats(
        messages=num_parties - 1,
        bytes_sent=records * columns * Network.SHARE_BYTES * (num_parties - 1),
        rounds=1,
    )
    return meter


def reveal_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of opening ``records`` x ``columns`` values."""
    meter = CostMeter(output_records=records * columns)
    meter.network = NetworkStats(
        messages=num_parties * (num_parties - 1),
        bytes_sent=records * columns * Network.SHARE_BYTES * num_parties,
        rounds=1,
    )
    return meter


def shuffle_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of an oblivious shuffle of a ``records`` x ``columns`` relation."""
    meter = CostMeter(shuffled_elements=records * columns)
    meter.network = NetworkStats(
        messages=num_parties * num_parties,
        bytes_sent=num_parties * records * columns * Network.SHARE_BYTES,
        rounds=num_parties,
    )
    return meter


def sort_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of an oblivious bitonic sort (key + payload swap per comparator)."""
    comparators = bitonic_comparator_count(records)
    meter = CostMeter(
        comparisons=comparators,
        # Each comparator multiplexes every column twice (select low/high),
        # costing 2 multiplications per column.
        multiplications=comparators * 2 * max(1, columns),
        local_ops=comparators * 4 * max(1, columns),
    )
    rounds = _stage_count(records) * 3  # compare + two selects per stage
    meter.network = NetworkStats(
        messages=rounds * num_parties,
        bytes_sent=comparators * (1 + 2 * columns) * Network.SHARE_BYTES,
        rounds=rounds,
    )
    return meter


def merge_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of an oblivious merge of pre-sorted runs totalling ``records`` rows."""
    comparators = bitonic_merge_comparator_count(records)
    meter = CostMeter(
        comparisons=comparators,
        multiplications=comparators * 2 * max(1, columns),
        local_ops=comparators * 4 * max(1, columns),
    )
    rounds = _log2_ceil(records) * 3
    meter.network = NetworkStats(
        messages=rounds * num_parties,
        bytes_sent=comparators * (1 + 2 * columns) * Network.SHARE_BYTES,
        rounds=rounds,
    )
    return meter


def join_meter(
    left_rows: int, right_rows: int, out_columns: int, num_parties: int = 3
) -> CostMeter:
    """Cost of the standard Cartesian-product MPC join (output size revealed)."""
    pairs = left_rows * right_rows
    meter = CostMeter(
        comparisons=pairs,
        local_ops=pairs * out_columns,
    )
    meter.merge(shuffle_meter(pairs, out_columns + 1, num_parties))
    meter.merge(reveal_meter(pairs, 1, num_parties))
    return meter


def aggregate_meter(
    records: int,
    num_parties: int = 3,
    presorted: bool = False,
    scalar: bool = False,
) -> CostMeter:
    """Cost of the sort-based oblivious grouped aggregation (Jónsson et al.).

    ``scalar=True`` models a whole-relation SUM/COUNT, which only needs local
    share additions.
    """
    if scalar:
        return CostMeter(local_ops=records)
    meter = CostMeter()
    if not presorted:
        meter.merge(sort_meter(records, 1, num_parties))
    # Linear accumulation scan: one equality + one multiplication per row.
    meter.comparisons += max(0, records - 1)
    meter.multiplications += max(0, records - 1)
    meter.local_ops += records * 2
    meter.merge(shuffle_meter(records, 3, num_parties))
    meter.merge(reveal_meter(records, 1, num_parties))
    return meter


def filter_meter(records: int, columns: int, num_parties: int = 3) -> CostMeter:
    """Cost of an oblivious filter against a public constant (size revealed)."""
    meter = CostMeter(comparisons=records)
    meter.merge(shuffle_meter(records, columns + 1, num_parties))
    meter.merge(reveal_meter(records, 1, num_parties))
    return meter


def oblivious_index_meter(
    input_rows: int, selected_rows: int, columns: int, num_parties: int = 3
) -> CostMeter:
    """Cost of Laud-style oblivious indexing: O((n+m) log(n+m))."""
    total = input_rows + selected_rows
    ops = total * _log2_ceil(total)
    meter = CostMeter(comparisons=ops, multiplications=ops * max(1, columns))
    meter.network = NetworkStats(
        messages=2 * _log2_ceil(total) * num_parties,
        bytes_sent=total * Network.SHARE_BYTES,
        rounds=2 * _log2_ceil(total),
    )
    return meter


def hybrid_join_meter(
    left_rows: int,
    right_rows: int,
    output_rows: int,
    out_columns: int,
    num_parties: int = 3,
) -> CostMeter:
    """Cost of the MPC portion of the hybrid join (§5.3, Figure 3).

    Two input shuffles, two key-column reveals to the STP, two oblivious
    indexing passes, and a final shuffle of the joined result.  The STP's
    cleartext join is charged by the cleartext engine, not here.
    """
    meter = CostMeter()
    meter.merge(shuffle_meter(left_rows, out_columns, num_parties))
    meter.merge(shuffle_meter(right_rows, out_columns, num_parties))
    meter.merge(reveal_meter(left_rows, 1, num_parties))
    meter.merge(reveal_meter(right_rows, 1, num_parties))
    # STP secret-shares the two index relations back into the MPC.
    meter.merge(share_input_meter(output_rows, 2, num_parties))
    meter.merge(oblivious_index_meter(left_rows, output_rows, out_columns, num_parties))
    meter.merge(oblivious_index_meter(right_rows, output_rows, out_columns, num_parties))
    meter.merge(shuffle_meter(output_rows, out_columns, num_parties))
    return meter


def hybrid_aggregate_meter(
    records: int, output_rows: int, num_parties: int = 3
) -> CostMeter:
    """Cost of the MPC portion of the hybrid aggregation (§5.3).

    One input shuffle, a group-by-key reveal to the STP, the STP's equality
    flags re-shared into MPC, a cleartext-ordered reorder (local), the
    oblivious accumulation scan, and a final shuffle + flag reveal.
    """
    meter = CostMeter()
    meter.merge(shuffle_meter(records, 2, num_parties))
    meter.merge(reveal_meter(records, 1, num_parties))
    meter.merge(share_input_meter(records, 1, num_parties))
    # Accumulation: one multiplication per row (equality flags already known
    # as secret shares, no comparisons needed — the asymptotic win).
    meter.multiplications += max(0, records - 1)
    meter.local_ops += records * 2
    meter.merge(shuffle_meter(records, 3, num_parties))
    meter.merge(reveal_meter(records, 1, num_parties))
    return meter


def _stage_count(n: int) -> int:
    if n <= 1:
        return 0
    k = _log2_ceil(n)
    return k * (k + 1) // 2
