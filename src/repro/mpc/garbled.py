"""Obliv-C-style garbled-circuit MPC backend.

Obliv-C is a two-party garbled-circuit framework.  Its defining property for
Conclave's purposes (§2.3) is that circuit *state* is far larger than the
input data — every 64-bit value becomes 64 wires carrying 128-bit labels plus
buffered garbled tables — so joins run out of memory at a few tens of
thousands of records and even projections fail at a few hundred thousand on
the paper's 4 GB VMs.

This backend exposes the same uniform operator interface as
:class:`~repro.mpc.sharemind.SharemindBackend`.  Results are computed with
the cleartext :class:`~repro.data.table.Table` semantics (the evaluator's
view of the computation is correct by construction), while the backend
accounts for the non-XOR gates, the oblivious-transferred input bits, and
the resident circuit state of the equivalent garbled execution.  When the
working set of an operator exceeds ``memory_limit_bytes`` the backend raises
:class:`CircuitMemoryError`, reproducing the OOM failures the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.table import Table
from repro.mpc.runtime import GarbledCostModel

#: Bits per value in the circuits we build.
VALUE_BITS = 64
#: Non-XOR gates of a 64-bit comparison / equality test.
GATES_PER_COMPARISON = VALUE_BITS
#: Non-XOR gates of a 64-bit addition.
GATES_PER_ADDITION = VALUE_BITS
#: Non-XOR gates of a 64-bit (schoolbook) multiplication.
GATES_PER_MULTIPLICATION = VALUE_BITS * VALUE_BITS
#: Non-XOR gates of a 64-bit 2:1 multiplexer (oblivious select).
GATES_PER_MUX = VALUE_BITS
#: Resident bytes of circuit state per secret 64-bit value (wire labels plus
#: the framework's buffering; calibrated so projections exhaust a 4 GB VM at
#: roughly 300-500k records, as in Figure 1c).
BYTES_PER_VALUE = 8192
#: Resident bytes per Cartesian-product pair during a join (the match flag
#: wires and bookkeeping; calibrated so joins exhaust 4 GB at ~30k records,
#: as in Figure 1b).
BYTES_PER_JOIN_PAIR = 16


class CircuitMemoryError(RuntimeError):
    """Raised when a garbled circuit's state exceeds the backend memory limit."""

    def __init__(self, operator: str, required_bytes: int, limit_bytes: int):
        super().__init__(
            f"garbled-circuit {operator} needs ~{required_bytes / 1024**3:.1f} GiB of circuit "
            f"state but only {limit_bytes / 1024**3:.1f} GiB are available"
        )
        self.operator = operator
        self.required_bytes = required_bytes
        self.limit_bytes = limit_bytes


@dataclass
class GarbledTable:
    """Handle to a relation held as garbled-circuit state."""

    table: Table

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def num_values(self) -> int:
        return self.table.num_rows * self.table.num_columns

    @property
    def schema(self):
        return self.table.schema


class OblivCBackend:
    """Two-party garbled-circuit MPC backend with Obliv-C-like costs."""

    MAX_PARTIES = 2
    name = "obliv-c"
    is_mpc = True

    def __init__(
        self,
        party_names: Sequence[str],
        cost_model: GarbledCostModel | None = None,
    ):
        party_names = list(party_names)
        if len(party_names) != 2:
            raise ValueError("the Obliv-C backend supports exactly two computing parties")
        self.party_names = party_names
        self.cost_model = cost_model or GarbledCostModel()
        self.total_gates = 0
        self.total_input_bits = 0
        self.peak_memory_bytes = 0

    # -- data movement --------------------------------------------------------------------

    def ingest(self, table: Table, contributor: str | None = None) -> GarbledTable:
        """Feed a party's relation into the circuit via oblivious transfer."""
        handle = GarbledTable(table)
        self.total_input_bits += handle.num_values * VALUE_BITS
        self._charge_memory("ingest", handle.num_values * BYTES_PER_VALUE)
        return handle

    def reveal(self, handle: GarbledTable) -> Table:
        """Reveal the output wires of a relation to both parties."""
        return handle.table

    def reveal_to(self, handle: GarbledTable, party: str) -> Table:
        return handle.table

    # -- relational operators ----------------------------------------------------------------

    def concat(self, handles: Sequence[GarbledTable]) -> GarbledTable:
        tables = [h.table for h in handles]
        result = tables[0].concat(*tables[1:])
        self._charge_memory("concat", result.num_rows * result.num_columns * BYTES_PER_VALUE)
        return GarbledTable(result)

    def project(self, handle: GarbledTable, columns: Sequence[str]) -> GarbledTable:
        result = handle.table.project(list(columns))
        # Projection needs no gates but the circuit still holds the full input
        # plus the projected copy in memory.
        working_set = (handle.num_values + result.num_rows * result.num_columns) * BYTES_PER_VALUE
        self._charge_memory("project", working_set)
        return GarbledTable(result)

    def filter(self, handle: GarbledTable, column: str, op: str, value: float) -> GarbledTable:
        n = handle.num_rows
        self.total_gates += n * (GATES_PER_COMPARISON + GATES_PER_MUX * handle.table.num_columns)
        self._charge_memory("filter", 2 * handle.num_values * BYTES_PER_VALUE)
        return GarbledTable(handle.table.filter(column, op, value))

    def join(
        self, left: GarbledTable, right: GarbledTable, left_on: str, right_on: str
    ) -> GarbledTable:
        pairs = left.num_rows * right.num_rows
        out_columns = left.table.num_columns + right.table.num_columns - 1
        self.total_gates += pairs * (GATES_PER_COMPARISON + GATES_PER_MUX * out_columns)
        working_set = (
            (left.num_values + right.num_values) * BYTES_PER_VALUE
            + pairs * BYTES_PER_JOIN_PAIR
        )
        self._charge_memory("join", working_set)
        result = left.table.join(right.table, [left_on], [right_on])
        return GarbledTable(result)

    def aggregate(
        self,
        handle: GarbledTable,
        group_by: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
        presorted: bool = False,
    ) -> GarbledTable:
        n = handle.num_rows
        if group_by is None:
            # Whole-relation reduction: a balanced adder tree.
            self.total_gates += max(0, n - 1) * GATES_PER_ADDITION
            self._charge_memory("aggregate", handle.num_values * BYTES_PER_VALUE)
        else:
            # Sort-based grouped aggregation: bitonic sort + linear scan.
            from repro.mpc.estimates import bitonic_comparator_count

            comparators = 0 if presorted else bitonic_comparator_count(n)
            self.total_gates += comparators * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX)
            self.total_gates += max(0, n - 1) * (GATES_PER_COMPARISON + GATES_PER_ADDITION + GATES_PER_MUX)
            self._charge_memory("aggregate", 2 * handle.num_values * BYTES_PER_VALUE)
        group = [group_by] if group_by else []
        result = handle.table.aggregate(group, agg_col, func, out_name)
        return GarbledTable(result)

    def multiply(self, handle: GarbledTable, out_name: str, left: str, right: str | float) -> GarbledTable:
        n = handle.num_rows
        self.total_gates += n * GATES_PER_MULTIPLICATION
        self._charge_memory("multiply", (handle.num_values + n) * BYTES_PER_VALUE)
        rhs: str | float = right
        result = handle.table.arithmetic(out_name, left, "*", rhs)
        return GarbledTable(result)

    def divide(self, handle: GarbledTable, out_name: str, left: str, right: str) -> GarbledTable:
        n = handle.num_rows
        # Division circuits cost roughly two multiplications' worth of gates.
        self.total_gates += n * 2 * GATES_PER_MULTIPLICATION
        self._charge_memory("divide", (handle.num_values + n) * BYTES_PER_VALUE)
        result = handle.table.arithmetic(out_name, left, "/", right)
        return GarbledTable(result)

    def arith(self, handle: GarbledTable, out_name: str, left: str, op: str, right: str | float) -> GarbledTable:
        n = handle.num_rows
        self.total_gates += n * GATES_PER_ADDITION
        self._charge_memory("map", (handle.num_values + n) * BYTES_PER_VALUE)
        return GarbledTable(handle.table.arithmetic(out_name, left, op, right))

    def compare(self, handle: GarbledTable, out_name: str, left: str, op: str, right: str | float) -> GarbledTable:
        n = handle.num_rows
        self.total_gates += n * GATES_PER_COMPARISON
        self._charge_memory("compare", (handle.num_values + n) * BYTES_PER_VALUE)
        return GarbledTable(handle.table.compare(out_name, left, op, right))

    def bool_op(self, handle: GarbledTable, out_name: str, op: str, operands: Sequence[str]) -> GarbledTable:
        n = handle.num_rows
        # One non-XOR gate per operand pair per row (NOT is free in circuits).
        self.total_gates += n * max(0, len(list(operands)) - 1)
        self._charge_memory("bool_op", (handle.num_values + n) * BYTES_PER_VALUE)
        return GarbledTable(handle.table.bool_op(out_name, op, list(operands)))

    def sort_by(self, handle: GarbledTable, column: str, ascending: bool = True) -> GarbledTable:
        from repro.mpc.estimates import bitonic_comparator_count

        n = handle.num_rows
        comparators = bitonic_comparator_count(n)
        self.total_gates += comparators * (
            GATES_PER_COMPARISON + 2 * GATES_PER_MUX * handle.table.num_columns
        )
        self._charge_memory("sort", 2 * handle.num_values * BYTES_PER_VALUE)
        return GarbledTable(handle.table.sort_by([column], ascending=ascending))

    def merge_sorted(
        self, handles: Sequence[GarbledTable], column: str, ascending: bool = True
    ) -> GarbledTable:
        """Merge sorted relations: a single bitonic merge pass in the circuit."""
        from repro.mpc.estimates import bitonic_merge_comparator_count

        handles = list(handles)
        tables = [h.table for h in handles]
        combined = tables[0].concat(*tables[1:]) if len(tables) > 1 else tables[0]
        comparators = bitonic_merge_comparator_count(combined.num_rows)
        self.total_gates += comparators * (
            GATES_PER_COMPARISON + 2 * GATES_PER_MUX * combined.num_columns
        )
        self._charge_memory(
            "merge", 2 * combined.num_rows * combined.num_columns * BYTES_PER_VALUE
        )
        return GarbledTable(combined.sort_by([column], ascending=ascending))

    def distinct(self, handle: GarbledTable, columns: Sequence[str]) -> GarbledTable:
        sorted_handle = self.sort_by(handle, list(columns)[0])
        n = sorted_handle.num_rows
        self.total_gates += max(0, n - 1) * GATES_PER_COMPARISON
        return GarbledTable(sorted_handle.table.distinct(list(columns)))

    def limit(self, handle: GarbledTable, n: int) -> GarbledTable:
        return GarbledTable(handle.table.limit(n))

    # -- accounting -----------------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated seconds of garbled-circuit work performed so far."""
        return self.cost_model.seconds(self.total_gates, self.total_input_bits)

    def reset_meter(self) -> None:
        self.total_gates = 0
        self.total_input_bits = 0
        self.peak_memory_bytes = 0

    def _charge_memory(self, operator: str, working_set_bytes: int) -> None:
        self.peak_memory_bytes = max(self.peak_memory_bytes, working_set_bytes)
        if working_set_bytes > self.cost_model.memory_limit_bytes:
            raise CircuitMemoryError(operator, working_set_bytes, self.cost_model.memory_limit_bytes)
