"""Oblivious relational operators over secret-shared tables.

The paper implements "the same standard MPC algorithms for joins (a
Cartesian product approach) and aggregations [Jónsson et al.]" in both
Sharemind and Obliv-C (§6).  This module provides those algorithms — plus
project, filter, concat, distinct, sort and arithmetic — over a
:class:`SharedTable`, which wraps one :class:`SharedVector` per column
together with the cleartext :class:`~repro.data.schema.Schema`.

All operators are *functional*: results reconstruct to the same rows a
cleartext engine would produce (up to row order, which MPC deliberately
randomises), and every oblivious operation is charged to the engine's cost
meter so the backends can report realistic simulated runtimes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.mpc.estimates import _log2_ceil
from repro.mpc.network import Network
from repro.mpc.oblivious import (
    oblivious_index,
    oblivious_merge,
    oblivious_shuffle,
    oblivious_sort,
)
from repro.mpc.secretshare import SecretSharingEngine, SharedVector

#: Fixed-point scaling factor used to carry fractional values (divisions)
#: through the integer secret-sharing ring.
FIXED_POINT_SCALE = 1_000_000


class SharedTable:
    """A secret-shared relation: a schema plus one shared column per field."""

    def __init__(self, engine: SecretSharingEngine, schema: Schema, columns: Sequence[SharedVector]):
        if len(schema) != len(columns):
            raise ValueError("schema width does not match number of shared columns")
        n = len(columns[0]) if columns else 0
        for col in columns:
            if len(col) != n:
                raise ValueError("all shared columns must have the same length")
        self.engine = engine
        self.schema = schema
        self.columns = list(columns)

    # -- lifecycle ----------------------------------------------------------------------

    @classmethod
    def from_table(
        cls, engine: SecretSharingEngine, table: Table, contributor: str | None = None
    ) -> "SharedTable":
        """Secret-share a cleartext table into the MPC."""
        columns = []
        for cdef in table.schema:
            values = table.column(cdef.name)
            if cdef.ctype is ColumnType.FLOAT:
                values = np.round(values * FIXED_POINT_SCALE).astype(np.int64)
            columns.append(engine.input_vector(values, contributor=contributor))
        return cls(engine, table.schema, columns)

    @classmethod
    def from_metadata(
        cls, engine: SecretSharingEngine, schema: Schema, num_rows: int, contributor: str
    ) -> "SharedTable":
        """Receive a peer party's secret-shared table.

        Only the schema and the row count (public metadata) are known here;
        this engine's share slices arrive over the wire from ``contributor``,
        which runs :meth:`from_table` in lockstep.  The cleartext never
        leaves the contributing party.
        """
        columns = [
            engine.input_vector(None, contributor=contributor, num_rows=num_rows)
            for _ in schema
        ]
        return cls(engine, schema, columns)

    def reveal(self) -> Table:
        """Open the whole relation to all parties as a cleartext table."""
        arrays = []
        for cdef, col in zip(self.schema, self.columns):
            values = self.engine.open(col)
            if cdef.ctype is ColumnType.FLOAT:
                arrays.append(values.astype(np.float64) / FIXED_POINT_SCALE)
            else:
                arrays.append(values)
        return Table(self.schema, arrays)

    def reveal_to(self, party: str) -> Table | None:
        """Open the whole relation to a single party.

        Engines that do not hold the target party's slice ship their shares
        and get ``None`` back — only the target materialises the cleartext.
        """
        arrays = []
        for cdef, col in zip(self.schema, self.columns):
            values = self.engine.reveal_to(col, party)
            if values is None:
                arrays = None
                continue
            if cdef.ctype is ColumnType.FLOAT:
                arrays.append(values.astype(np.float64) / FIXED_POINT_SCALE)
            else:
                arrays.append(values)
        if arrays is None:
            return None
        return Table(self.schema, arrays)

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column(self, name: str) -> SharedVector:
        return self.columns[self.schema.index_of(name)]

    def _replace(self, schema: Schema, columns: Sequence[SharedVector]) -> "SharedTable":
        return SharedTable(self.engine, schema, list(columns))


# -- relational operators ----------------------------------------------------------------


def mpc_project(table: SharedTable, names: Sequence[str]) -> SharedTable:
    """Projection: drop / reorder columns.  Requires no oblivious operations."""
    names = list(names)
    idx = table.schema.indices_of(names)
    table.engine.meter.local_ops += table.num_rows * len(names)
    return table._replace(table.schema.project(names), [table.columns[i] for i in idx])


def mpc_concat(tables: Sequence[SharedTable]) -> SharedTable:
    """Duplicate-preserving union of shared relations with identical schemas."""
    if not tables:
        raise ValueError("need at least one relation to concatenate")
    first = tables[0]
    for t in tables[1:]:
        if not first.schema.concat_compatible(t.schema):
            raise ValueError("cannot concat shared relations with different schemas")
        if t.engine is not first.engine:
            raise ValueError("cannot concat relations from different MPC engines")
    engine = first.engine
    columns = []
    for c in range(len(first.schema)):
        shares = [
            np.concatenate([t.columns[c].shares[p] for t in tables])
            for p in range(engine.num_local_shares)
        ]
        columns.append(SharedVector(engine, shares))
    engine.meter.local_ops += sum(t.num_rows for t in tables) * len(first.schema)
    return SharedTable(engine, first.schema, columns)


def mpc_multiply(
    table: SharedTable, out_name: str, left: str, right: str | int
) -> SharedTable:
    """Append ``out_name = left * right`` (column or public scalar).

    When both operands carry fixed-point (FLOAT) values, the product is
    rescaled by :data:`FIXED_POINT_SCALE` with a truncation step, as a real
    secret-sharing backend would do after a fixed-point multiplication.
    """
    engine = table.engine
    lcol = table.column(left)
    out_type = table.schema[left].ctype
    if isinstance(right, str):
        result = engine.mul(lcol, table.column(right))
        if (
            table.schema[left].ctype is ColumnType.FLOAT
            and table.schema[right].ctype is ColumnType.FLOAT
        ):
            result = _truncate_fixed_point(engine, result)
            out_type = ColumnType.FLOAT
        elif table.schema[right].ctype is ColumnType.FLOAT:
            out_type = ColumnType.FLOAT
    else:
        result = engine.scale(lcol, int(right))
    schema = table.schema.with_column(ColumnDef(out_name, out_type))
    return table._replace(schema, [*table.columns, result])


def _truncate_fixed_point(engine: SecretSharingEngine, vec: SharedVector) -> SharedVector:
    """Rescale a double-width fixed-point product back to single precision.

    Executed as an ideal functionality (env-open, divide, re-share) with
    the cost of a probabilistic truncation protocol (one multiplication and
    one round per element) charged to the meter.
    """
    n = len(vec)
    values = engine.env_open(vec)
    truncated = values // FIXED_POINT_SCALE
    engine.meter.multiplications += n
    engine.network.account_rounds(1, n * 8, messages_per_round=engine.num_parties)
    return engine.share_from_env(truncated)


def mpc_divide(table: SharedTable, out_name: str, left: str, right: str) -> SharedTable:
    """Append ``out_name = left / right`` as a fixed-point division.

    Division under secret sharing is notoriously expensive; the standard
    approach (Goldschmidt iteration) costs tens of multiplications per
    element.  We execute it as an ideal functionality over the reconstructed
    fixed-point values and meter that realistic cost.
    """
    engine = table.engine
    n = table.num_rows
    lvals = _decode_column(table, left)
    rvals = _decode_column(table, right)
    result = np.divide(
        lvals,
        rvals,
        out=np.zeros(n, dtype=np.float64),
        where=rvals != 0,
    )
    encoded = np.round(result * FIXED_POINT_SCALE).astype(np.int64)
    # Goldschmidt division: ~5 iterations of 3 multiplications each.
    engine.meter.multiplications += 15 * n
    engine.network.account_rounds(10, n * 8, messages_per_round=engine.num_parties)
    out_col = engine.share_from_env(encoded)
    schema = table.schema.with_column(ColumnDef(out_name, ColumnType.FLOAT))
    return table._replace(schema, [*table.columns, out_col])


def _comparison_flags(
    engine: SecretSharingEngine,
    col: SharedVector,
    op: str,
    rhs: "SharedVector | int",
    n: int,
) -> SharedVector:
    """Secret 0/1 flags for ``col <op> rhs`` (shared vector or public scalar).

    Every operator costs exactly one secret comparison: for an integer
    scalar ``v``, ``x <= v`` is ``x < v+1``; for a shared vector ``y``,
    ``x > y`` is ``y < x``.  Negations are a local share subtraction.
    """
    if op == "==":
        return engine.equals(col, rhs)
    if op == "!=":
        eq = engine.equals(col, rhs)
        return engine.sub(engine.constant(np.ones(n, dtype=np.int64)), eq)
    if op == "<":
        return engine.less_than(col, rhs)
    if op == ">":
        if isinstance(rhs, SharedVector):
            return engine.less_than(rhs, col)
        le = engine.less_than(col, int(rhs) + 1)
        return engine.sub(engine.constant(np.ones(n, dtype=np.int64)), le)
    if op == "<=":
        if isinstance(rhs, SharedVector):
            gt = engine.less_than(rhs, col)
            return engine.sub(engine.constant(np.ones(n, dtype=np.int64)), gt)
        return engine.less_than(col, int(rhs) + 1)
    if op == ">=":
        lt = engine.less_than(col, rhs)
        return engine.sub(engine.constant(np.ones(n, dtype=np.int64)), lt)
    raise ValueError(f"unsupported comparison op {op!r}")


def _comparison_operands(
    table: SharedTable, left: str, right: str
) -> "tuple[SharedVector, SharedVector]":
    """Align the fixed-point scales of a column-vs-column comparison."""
    engine = table.engine
    lcol = table.column(left)
    rcol = table.column(right)
    left_float = table.schema[left].ctype is ColumnType.FLOAT
    right_float = table.schema[right].ctype is ColumnType.FLOAT
    if left_float and not right_float:
        rcol = engine.scale(rcol, FIXED_POINT_SCALE)
    elif right_float and not left_float:
        lcol = engine.scale(lcol, FIXED_POINT_SCALE)
    return lcol, rcol


def _scalar_comparison_flags(
    table: SharedTable, column: str, op: str, value: float
) -> SharedVector:
    """Secret 0/1 flags for ``column <op> public scalar``.

    Fixed-point (FLOAT) columns compare against the scaled constant; for
    integer columns a fractional constant is rewritten into the exact
    equivalent integer comparison (``x < 2.5`` → ``x <= 2``; ``x == 2.5`` is
    constant false), so the cleartext and MPC backends agree bit-for-bit.
    """
    engine = table.engine
    col = table.column(column)
    n = table.num_rows
    scalar = float(value)
    if table.schema[column].ctype is ColumnType.FLOAT:
        return _comparison_flags(engine, col, op, int(round(scalar * FIXED_POINT_SCALE)), n)
    if scalar.is_integer():
        return _comparison_flags(engine, col, op, int(scalar), n)
    floor = int(np.floor(scalar))
    if op == "==":
        return engine.constant(np.zeros(n, dtype=np.int64))
    if op == "!=":
        return engine.constant(np.ones(n, dtype=np.int64))
    if op in ("<", "<="):
        return _comparison_flags(engine, col, "<=", floor, n)
    if op in (">", ">="):
        return _comparison_flags(engine, col, ">=", floor + 1, n)
    raise ValueError(f"unsupported comparison op {op!r}")


def mpc_compare(
    table: SharedTable, out_name: str, left: str, op: str, right: "str | float"
) -> SharedTable:
    """Append a secret 0/1 column ``out_name = left <op> right``.

    ``right`` is a column name or a public scalar.  The flags stay
    secret-shared — nothing is revealed; compound predicates combine them
    with :func:`mpc_bool_op` before a single size-revealing filter step.
    """
    if isinstance(right, str):
        lcol, rcol = _comparison_operands(table, left, right)
        flags = _comparison_flags(table.engine, lcol, op, rcol, table.num_rows)
    else:
        flags = _scalar_comparison_flags(table, left, op, right)
    schema = table.schema.with_column(ColumnDef(out_name, ColumnType.INT))
    return table._replace(schema, [*table.columns, flags])


def mpc_bool_op(
    table: SharedTable, out_name: str, op: str, operands: Sequence[str]
) -> SharedTable:
    """Append ``out_name`` combining secret 0/1 columns with and/or/not."""
    engine = table.engine
    cols = [table.column(name) for name in operands]
    if op == "and":
        acc = cols[0]
        for other in cols[1:]:
            acc = engine.mul(acc, other)
    elif op == "or":
        acc = cols[0]
        for other in cols[1:]:
            # a OR b == a + b - a*b over 0/1 values.
            acc = engine.sub(engine.add(acc, other), engine.mul(acc, other))
    elif op == "not":
        if len(cols) != 1:
            raise ValueError("'not' takes exactly one operand column")
        ones = engine.constant(np.ones(table.num_rows, dtype=np.int64))
        acc = engine.sub(ones, cols[0])
    else:
        raise ValueError(f"unsupported boolean op {op!r}")
    schema = table.schema.with_column(ColumnDef(out_name, ColumnType.INT))
    return table._replace(schema, [*table.columns, acc])


def mpc_map(
    table: SharedTable, out_name: str, left: str, op: str, right: "str | float"
) -> SharedTable:
    """Append ``out_name = left <op> right`` for ``op`` in ``+``/``-``.

    Additive operations are local on additive shares — no communication.
    Fixed-point (FLOAT) operands are aligned to a common scale first.
    """
    if op not in ("+", "-"):
        raise ValueError(f"mpc_map supports '+' and '-', got {op!r}")
    engine = table.engine
    left_float = table.schema[left].ctype is ColumnType.FLOAT
    right_float = (
        table.schema[right].ctype is ColumnType.FLOAT
        if isinstance(right, str)
        else isinstance(right, float) and not float(right).is_integer()
    )
    out_type = ColumnType.FLOAT if (left_float or right_float) else ColumnType.INT
    lcol = table.column(left)
    if out_type is ColumnType.FLOAT and not left_float:
        lcol = engine.scale(lcol, FIXED_POINT_SCALE)
    if isinstance(right, str):
        rhs: "SharedVector | int" = table.column(right)
        if out_type is ColumnType.FLOAT and not right_float:
            rhs = engine.scale(rhs, FIXED_POINT_SCALE)
    else:
        scalar = float(right)
        rhs = int(round(scalar * FIXED_POINT_SCALE)) if out_type is ColumnType.FLOAT else int(scalar)
    result = engine.add(lcol, rhs) if op == "+" else engine.sub(lcol, rhs)
    schema = table.schema.with_column(ColumnDef(out_name, out_type))
    return table._replace(schema, [*table.columns, result])


def mpc_filter(table: SharedTable, column: str, op: str, value: int) -> SharedTable:
    """Oblivious filter against a public constant.

    The filter produces secret 0/1 flags, obliviously shuffles the relation,
    reveals the flags and discards non-matching rows — the standard
    size-revealing filter used by the paper's baselines.
    """
    engine = table.engine
    flags = _scalar_comparison_flags(table, column, op, value)

    shuffled = oblivious_shuffle(engine, [flags, *table.columns])
    flag_values = engine.open(shuffled[0])
    keep = np.nonzero(flag_values)[0]
    columns = [
        SharedVector(engine, [share[keep] for share in col.shares]) for col in shuffled[1:]
    ]
    return table._replace(table.schema, columns)


def mpc_sort(table: SharedTable, key: str, ascending: bool = True) -> SharedTable:
    """Obliviously sort the relation by ``key`` with a bitonic network.

    A descending sort runs the same ascending network and then reverses the
    rows — the reversal is a public permutation, so it is free.
    """
    engine = table.engine
    key_idx = table.schema.index_of(key)
    payload = [c for i, c in enumerate(table.columns) if i != key_idx]
    sorted_key, sorted_payload = oblivious_sort(engine, table.columns[key_idx], payload)
    columns = list(sorted_payload)
    columns.insert(key_idx, sorted_key)
    if not ascending:
        columns = [
            SharedVector(engine, [share[::-1].copy() for share in col.shares])
            for col in columns
        ]
    return table._replace(table.schema, columns)


def mpc_merge_sorted(
    tables: Sequence[SharedTable], key: str, ascending: bool = True
) -> SharedTable:
    """Obliviously merge relations that are each sorted by ``key``.

    Uses the bitonic merge of :func:`repro.mpc.oblivious.oblivious_merge`,
    which costs O(n log n) comparisons instead of the O(n log^2 n) a full
    re-sort of the concatenation would need.
    """
    if not tables:
        raise ValueError("need at least one relation to merge")
    first = tables[0]
    engine = first.engine
    for t in tables[1:]:
        if t.engine is not engine:
            raise ValueError("cannot merge relations from different MPC engines")
        if not first.schema.concat_compatible(t.schema):
            raise ValueError("cannot merge relations with different schemas")

    key_idx = first.schema.index_of(key)
    runs = []
    for t in tables:
        payload = [c for i, c in enumerate(t.columns) if i != key_idx]
        runs.append((t.columns[key_idx], payload))
    merged_key, merged_payload = oblivious_merge(engine, runs, ascending)
    columns = list(merged_payload)
    columns.insert(key_idx, merged_key)
    return SharedTable(engine, first.schema, columns)


def mpc_join(
    left: SharedTable,
    right: SharedTable,
    left_on: str,
    right_on: str,
    suffix: str = "_r",
) -> SharedTable:
    """Standard MPC join: Cartesian product of the two relations.

    Every pair of rows is compared obliviously (``O(n*m)`` equality tests);
    matching pairs are selected by obliviously shuffling the product and
    revealing the match flags — the output size is therefore public, which
    matches the baseline the paper benchmarks against (§7.3).
    """
    engine = left.engine
    if right.engine is not engine:
        raise ValueError("cannot join relations from different MPC engines")
    n, m = left.num_rows, right.num_rows

    # Build the flattened Cartesian product index vectors.
    li = np.repeat(np.arange(n, dtype=np.int64), m)
    ri = np.tile(np.arange(m, dtype=np.int64), n)

    lkey = _gather_vector(engine, left.column(left_on), li)
    rkey = _gather_vector(engine, right.column(right_on), ri)
    flags = engine.equals(lkey, rkey)

    # Assemble the product columns: all left columns, right non-key columns.
    out_defs: list[ColumnDef] = list(left.schema.columns)
    out_cols: list[SharedVector] = [
        _gather_vector(engine, col, li) for col in left.columns
    ]
    taken = {c.name for c in out_defs}
    for cdef, col in zip(right.schema, right.columns):
        if cdef.name == right_on:
            continue
        name = cdef.name + suffix if cdef.name in taken else cdef.name
        out_defs.append(ColumnDef(name, cdef.ctype, cdef.trust))
        out_cols.append(_gather_vector(engine, col, ri))

    shuffled = oblivious_shuffle(engine, [flags, *out_cols])
    flag_values = engine.open(shuffled[0])
    keep = np.nonzero(flag_values)[0]
    columns = [
        SharedVector(engine, [share[keep] for share in col.shares]) for col in shuffled[1:]
    ]
    return SharedTable(engine, Schema(out_defs), columns)


def mpc_aggregate(
    table: SharedTable,
    group_by: str | None,
    agg_col: str | None,
    func: str,
    out_name: str,
    presorted: bool = False,
) -> SharedTable:
    """Sort-based oblivious aggregation (Jónsson et al.).

    The relation is obliviously sorted by the group-by key, the aggregate is
    accumulated into the last row of every key group with an oblivious linear
    scan, and non-final rows are discarded after an oblivious shuffle and a
    flag reveal.  ``presorted=True`` skips the sort — this is exactly the
    saving Conclave's sort-elimination pass (§5.4) exploits.

    With ``group_by=None`` the whole relation reduces to one row, which needs
    only local share additions (sums) — the cheap case in Figure 1a.
    """
    func = func.lower()
    engine = table.engine
    n = table.num_rows

    if group_by is None:
        return _mpc_scalar_aggregate(table, agg_col, func, out_name)

    if func == "count":
        value_col = engine.constant(np.ones(n, dtype=np.int64))
        out_type = ColumnType.INT
    else:
        if func not in ("sum", "min", "max"):
            raise ValueError(
                f"oblivious grouped aggregation supports sum/count/min/max, got {func!r}"
            )
        value_col = table.column(agg_col)
        out_type = table.schema[agg_col].ctype

    key_col = table.column(group_by)
    if not presorted and n > 1:
        key_col, payload = oblivious_sort(engine, key_col, [value_col])
        value_col = payload[0]

    if n == 0:
        schema = Schema([table.schema[group_by], ColumnDef(out_name, out_type)])
        empty = engine.empty_vector()
        return SharedTable(engine, schema, [empty, empty])

    # Oblivious accumulation scan: fold each row's value into the next row of
    # the same key group; a row is "last of its group" if the next key differs.
    ones = engine.constant(np.ones(n, dtype=np.int64))
    keep_flags = ones
    acc = value_col
    if n > 1:
        prev_key = _gather_vector(engine, key_col, np.arange(0, n - 1, dtype=np.int64))
        next_key = _gather_vector(engine, key_col, np.arange(1, n, dtype=np.int64))
        same_as_next = engine.equals(prev_key, next_key)  # length n-1, row i vs i+1

        # Batched accumulation: the real protocol runs a logarithmic-depth
        # segmented prefix scan over whole share vectors — one oblivious fold
        # per row charged analytically, no per-row message exchange, so wire
        # rounds stay independent of the relation size.  Segment boundaries
        # come from the (already ideal) equality flags.
        same = engine.env_open(same_as_next).astype(bool)
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = ~same
        start_idx = np.maximum.accumulate(np.where(starts, np.arange(n), 0))
        if func in ("sum", "count"):
            # Segmented cumulative sum distributes over additive shares: the
            # per-party segmented prefix sums (mod 2^64) reconstruct to the
            # true segmented running totals.
            acc_shares = []
            nz = start_idx > 0
            for share in value_col.shares:
                running = np.cumsum(share, dtype=np.uint64)
                base = np.zeros(n, dtype=np.uint64)
                base[nz] = running[start_idx[nz] - 1]
                acc_shares.append(running - base)
            zero = engine.zero_sharing(n)
            acc = SharedVector(engine, [s + z for s, z in zip(acc_shares, zero)])
            engine.meter.multiplications += n - 1
            engine.meter.local_ops += 2 * n
            engine.network.account_rounds(
                _log2_ceil(n), n * Network.SHARE_BYTES, messages_per_round=engine.num_parties
            )
        else:
            # Grouped min/max: a segmented running-extremum scan, executed
            # ideally over reconstructed values with a fresh resharing, and
            # charged the oblivious scan's price (one comparison plus two
            # multiplexes per fold).
            values = engine.env_open(value_col)
            scan = np.minimum.accumulate if func == "min" else np.maximum.accumulate
            result = np.empty(n, dtype=np.int64)
            bounds = np.flatnonzero(starts)
            for b, e in zip(bounds, np.r_[bounds[1:], n]):
                result[b:e] = scan(values[b:e])
            acc = engine.share_from_env(result)
            engine.meter.comparisons += n - 1
            engine.meter.multiplications += 2 * (n - 1)
            engine.meter.local_ops += 2 * n
            engine.network.account_rounds(
                3 * _log2_ceil(n), n * Network.SHARE_BYTES, messages_per_round=engine.num_parties
            )

        # Row i is kept iff it is the last of its group: key[i] != key[i+1]
        # (or i == n-1).
        last_flags = engine.sub(
            engine.constant(np.ones(n - 1, dtype=np.int64)), same_as_next
        )
        keep_shares = [
            np.empty(n, dtype=np.uint64) for _ in range(engine.num_local_shares)
        ]
        one_shared = engine.constant(np.ones(1, dtype=np.int64))
        for p in range(engine.num_local_shares):
            keep_shares[p][: n - 1] = last_flags.shares[p]
            keep_shares[p][n - 1] = one_shared.shares[p][0]
        keep_flags = SharedVector(engine, keep_shares)

    shuffled = oblivious_shuffle(engine, [keep_flags, key_col, acc])
    flag_values = engine.open(shuffled[0])
    keep = np.nonzero(flag_values)[0]
    key_out = SharedVector(engine, [s[keep] for s in shuffled[1].shares])
    val_out = SharedVector(engine, [s[keep] for s in shuffled[2].shares])

    schema = Schema([table.schema[group_by], ColumnDef(out_name, out_type)])
    return SharedTable(engine, schema, [key_out, val_out])


def mpc_distinct(table: SharedTable, names: Sequence[str]) -> SharedTable:
    """Distinct values of the named columns, via sort + adjacent comparison."""
    projected = mpc_project(table, names)
    if len(names) != 1:
        raise ValueError("oblivious distinct currently supports a single column")
    counted = mpc_aggregate(projected, names[0], None, "count", "__count")
    return mpc_project(counted, [names[0]])


def _mpc_scalar_aggregate(
    table: SharedTable, agg_col: str | None, func: str, out_name: str
) -> SharedTable:
    """Aggregate the whole relation to a single row (no group-by)."""
    engine = table.engine
    n = table.num_rows
    if func == "count":
        result = engine.constant(np.array([n], dtype=np.int64))
        out_type = ColumnType.INT
    elif func == "sum":
        col = table.column(agg_col)
        total_shares = [
            np.array([share.sum(dtype=np.uint64)], dtype=np.uint64) for share in col.shares
        ]
        result = SharedVector(engine, total_shares)
        engine.meter.local_ops += n
        out_type = table.schema[agg_col].ctype
    else:
        raise ValueError(f"unsupported scalar aggregation {func!r}")
    schema = Schema([ColumnDef(out_name, out_type)])
    return SharedTable(engine, schema, [result])


# -- helpers -------------------------------------------------------------------------------


def _gather_vector(engine: SecretSharingEngine, vec: SharedVector, idx: np.ndarray) -> SharedVector:
    engine.meter.local_ops += len(idx)
    return SharedVector(engine, [share[idx] for share in vec.shares])


def _decode_column(table: SharedTable, name: str) -> np.ndarray:
    """Env-open a column to float, honouring the fixed-point encoding."""
    values = table.engine.env_open(table.column(name)).astype(np.float64)
    if table.schema[name].ctype is ColumnType.FLOAT:
        values = values / FIXED_POINT_SCALE
    return values
