"""Columnar batches: the vectorized executor's data representation.

A :class:`ColumnBatch` is the unit of data flowing through the columnar
engine (:mod:`repro.exec.engine`): a schema plus one NumPy array per column
(int64 or float64, exactly the dtypes :class:`~repro.data.table.Table`
uses) and an optional boolean *validity mask*.  The mask is how filters
stay cheap — a ``Filter`` operator ANDs its predicate flags into the mask
instead of copying every surviving row, and downstream per-lane operators
(``Compare``/``BoolOp``/``Map``) keep computing over all physical lanes.
Lanes that fail the mask carry garbage results, which is safe because they
are dropped at the next *compaction point*: any operator whose semantics
depend on row positions or row count (join, aggregate, sort, distinct,
limit, enumerate, concat, collect) first calls :meth:`ColumnBatch.compact`
to materialise only the valid lanes.

Batches are immutable in the same sense tables are: every operation
returns a new batch, and the underlying arrays are never written in place
(they may be shared views of a ``Table``'s columns).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table


class ColumnBatch:
    """A schema-carrying bundle of column arrays with an optional mask."""

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[np.ndarray] | None = None,
        mask: np.ndarray | None = None,
    ):
        self.schema = schema
        if columns is None:
            columns = [np.empty(0, dtype=Table._dtype(c)) for c in schema]
        if len(columns) != len(schema):
            raise ValueError(
                f"schema has {len(schema)} columns but {len(columns)} arrays given"
            )
        arrays: list[np.ndarray] = []
        lanes = None
        for cdef, col in zip(schema, columns):
            arr = np.asarray(col, dtype=Table._dtype(cdef))
            if arr.ndim != 1:
                raise ValueError("batch columns must be one-dimensional")
            if lanes is None:
                lanes = len(arr)
            elif len(arr) != lanes:
                raise ValueError("all columns must have the same length")
            arrays.append(arr)
        self._columns: tuple[np.ndarray, ...] = tuple(arrays)
        self._lanes: int = 0 if lanes is None else int(lanes)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if len(mask) != self._lanes:
                raise ValueError("mask length must match column length")
        self._mask: np.ndarray | None = mask

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table) -> "ColumnBatch":
        """Wrap a table's columns zero-copy (tables are immutable)."""
        return cls(table.schema, table.columns())

    def to_table(self) -> Table:
        """Materialise the valid lanes as a :class:`Table`."""
        compacted = self.compact()
        return Table(compacted.schema, compacted._columns)

    # -- accessors ---------------------------------------------------------------------

    @property
    def lane_count(self) -> int:
        """Physical lanes, including masked-out ones."""
        return self._lanes

    @property
    def num_rows(self) -> int:
        """Valid (unmasked) rows — the logical row count."""
        if self._mask is None:
            return self._lanes
        return int(self._mask.sum())

    @property
    def mask(self) -> np.ndarray | None:
        return self._mask

    def columns(self) -> tuple[np.ndarray, ...]:
        """Physical column arrays (views; do not mutate)."""
        return self._columns

    def column(self, name: str) -> np.ndarray:
        """Physical array for ``name``, including masked-out lanes."""
        return self._columns[self.schema.index_of(name)]

    def column_values(self, name: str) -> np.ndarray:
        """Valid lanes of column ``name`` only — cleartext row semantics."""
        col = self.column(name)
        if self._mask is None:
            return col
        return col[self._mask]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        masked = "" if self._mask is None else f", lanes={self._lanes}"
        return f"ColumnBatch({self.schema!r}, rows={self.num_rows}{masked})"

    # -- transformations ---------------------------------------------------------------

    def compact(self) -> "ColumnBatch":
        """Drop masked-out lanes; the result has no mask."""
        if self._mask is None:
            return self
        mask = self._mask
        return ColumnBatch(self.schema, [col[mask] for col in self._columns])

    def project(self, names: Sequence[str]) -> "ColumnBatch":
        """Keep only the named columns, in order (mask preserved)."""
        idx = self.schema.indices_of(list(names))
        return ColumnBatch(
            self.schema.project(list(names)),
            [self._columns[i] for i in idx],
            self._mask,
        )

    def rename(self, mapping: dict[str, str]) -> "ColumnBatch":
        return ColumnBatch(self.schema.rename(mapping), self._columns, self._mask)

    def with_column(
        self, name: str, values: np.ndarray, ctype: ColumnType | None = None
    ) -> "ColumnBatch":
        """Append a full-length lane array as a new column (mask preserved)."""
        values = np.asarray(values)
        if ctype is None:
            ctype = ColumnType.FLOAT if values.dtype.kind == "f" else ColumnType.INT
        cdef = ColumnDef(name, ctype)
        values = values.astype(Table._dtype(cdef))
        return ColumnBatch(
            self.schema.with_column(cdef), [*self._columns, values], self._mask
        )

    def narrow(self, flags: np.ndarray) -> "ColumnBatch":
        """AND per-lane boolean ``flags`` into the validity mask."""
        flags = np.asarray(flags, dtype=bool)
        if len(flags) != self._lanes:
            raise ValueError("filter flags length must match lane count")
        mask = flags if self._mask is None else (self._mask & flags)
        return ColumnBatch(self.schema, self._columns, mask)

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Rows of the *compacted* batch at positional ``indices``."""
        compacted = self.compact()
        indices = np.asarray(indices, dtype=np.int64)
        return ColumnBatch(
            compacted.schema, [col[indices] for col in compacted._columns]
        )
