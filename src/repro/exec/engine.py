"""The columnar cleartext backend.

:class:`ColumnarBackend` is a drop-in replacement for
:class:`~repro.cleartext.python_engine.PythonBackend`: same operator
surface, same semantics, but operating on :class:`~repro.exec.batch
.ColumnBatch` handles and the vectorized kernels in
:mod:`repro.exec.kernels` instead of per-operator :class:`Table` calls.
Per-lane operators (filter, compare, bool, map) are mask-lazy — a filter
costs one boolean AND, not a copy of every surviving column — and the
copy happens once at the next compaction point (join / aggregate / sort /
distinct / limit / enumerate / concat / collect).

The backend is the *same engine role* as the row backends: the plan
executor instantiates it per party when ``CompilationConfig.executor`` is
``"columnar"``, hands it the party's plaintext inputs, and collects plain
tables back out.  Everything it produces must be byte-identical to the
row engine (the differential corpus enforces this), so any operator whose
bit-exact vectorization is not worth the trouble should simply call the
corresponding ``Table`` method on a collected batch — correctness first,
the mask trick and the O(n log n) join/aggregate kernels are where the
throughput win lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import AGG_FUNCS, Table
from repro.exec.batch import ColumnBatch
from repro.exec import kernels


@dataclass(frozen=True)
class ColumnarCostModel:
    """Cost model for vectorized single-core batch processing.

    Same shape as :class:`~repro.cleartext.python_engine.PythonCostModel`
    but with a much smaller per-record coefficient: the kernels touch each
    record with a handful of SIMD-friendly array instructions instead of a
    Python-interpreter round trip.
    """

    #: Fixed per-job start-up overhead (batch assembly, dispatch).
    startup_seconds: float = 0.05
    #: Seconds per record per operator pass (vectorized).
    per_record_seconds: float = 2.0e-8

    def seconds(self, records_processed: int) -> float:
        return self.startup_seconds + records_processed * self.per_record_seconds


class ColumnarBackend:
    """Vectorized cleartext backend operating on column batches."""

    name = "columnar"
    is_mpc = False

    def __init__(self, cost_model: ColumnarCostModel | None = None):
        self.cost_model = cost_model or ColumnarCostModel()
        self.records_processed = 0
        self.jobs_run = 0

    # -- data movement ---------------------------------------------------------------

    def ingest(self, table: Table, contributor: str | None = None) -> ColumnBatch:
        self.jobs_run += 1
        if isinstance(table, ColumnBatch):
            return table
        return ColumnBatch.from_table(table)

    def collect(self, handle: ColumnBatch) -> Table:
        return handle.to_table()

    reveal = collect

    # -- relational operators ----------------------------------------------------------

    def concat(self, handles: Sequence[ColumnBatch]) -> ColumnBatch:
        handles = [h.compact() for h in handles]
        first = handles[0]
        for other in handles[1:]:
            if not first.schema.concat_compatible(other.schema):
                raise ValueError(
                    f"cannot concat incompatible schemas {first.schema} and {other.schema}"
                )
        width = len(first.schema)
        columns = [
            np.concatenate([h.columns()[j] for h in handles]) for j in range(width)
        ]
        result = ColumnBatch(first.schema, columns)
        self._charge(result.num_rows)
        return result

    def project(self, handle: ColumnBatch, columns: Sequence[str]) -> ColumnBatch:
        self._charge(handle.num_rows)
        return handle.project(list(columns))

    def filter(self, handle: ColumnBatch, column: str, op: str, value: float) -> ColumnBatch:
        self._charge(handle.num_rows)
        return handle.narrow(kernels.filter_flags(handle.column(column), op, value))

    def join(
        self, left: ColumnBatch, right: ColumnBatch, left_on: str, right_on: str
    ) -> ColumnBatch:
        left = left.compact()
        right = right.compact()
        self._charge(left.num_rows + right.num_rows)
        left_idx, right_idx = kernels.hash_join_indices(
            left.column(left_on), right.column(right_on)
        )
        left_cols = [col[left_idx] for col in left.columns()]
        right_keep = [c.name for c in right.schema if c.name != right_on]
        right_proj = right.project(right_keep)
        right_cols = [col[right_idx] for col in right_proj.columns()]
        taken = set(left.schema.names)
        right_defs = [
            cdef.renamed(cdef.name + "_r") if cdef.name in taken else cdef
            for cdef in right_proj.schema
        ]
        schema = Schema([*left.schema.columns, *right_defs])
        return ColumnBatch(schema, [*left_cols, *right_cols])

    def aggregate(
        self,
        handle: ColumnBatch,
        group_by: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
        presorted: bool = False,
    ) -> ColumnBatch:
        func = func.lower()
        if func not in AGG_FUNCS:
            raise ValueError(f"unsupported aggregation {func!r}")
        if func != "count" and agg_col is None:
            raise ValueError(f"aggregation {func!r} requires a value column")
        batch = handle.compact()
        self._charge(batch.num_rows)

        out_type = ColumnType.INT
        if agg_col is not None:
            out_type = batch.schema[agg_col].ctype
        if func == "mean":
            out_type = ColumnType.FLOAT
        out_def = ColumnDef(out_name, out_type)

        if not group_by:
            value = self._scalar_reduce(batch, func, agg_col)
            return ColumnBatch(Schema([out_def]), [np.array([value])])

        out_schema = Schema([*batch.schema.project([group_by]).columns, out_def])
        n = batch.num_rows
        if n == 0:
            key_dtype = Table._dtype(batch.schema[group_by])
            return ColumnBatch(
                out_schema,
                [np.array([], dtype=key_dtype), np.array([], dtype=Table._dtype(out_def))],
            )

        key = batch.column(group_by)
        order, starts, ends = kernels.group_slices(key)
        out_keys = key[order][starts]
        if func == "count":
            values = kernels.segment_reduce(key[order], starts, ends, func)
        else:
            sorted_values = batch.column(agg_col)[order]
            values = kernels.segment_reduce(sorted_values, starts, ends, func)
        value_array = np.asarray(values).astype(Table._dtype(out_def))
        return ColumnBatch(out_schema, [out_keys, value_array])

    @staticmethod
    def _scalar_reduce(batch: ColumnBatch, func: str, agg_col: str | None):
        """Whole-column reduction, matching ``Table._reduce`` bit for bit."""
        if func == "count":
            return int(batch.num_rows)
        col = batch.column_values(agg_col)
        if len(col) == 0:
            return 0
        if func == "sum":
            return col.sum()
        if func == "min":
            return col.min()
        if func == "max":
            return col.max()
        if func == "mean":
            return float(col.mean())
        raise AssertionError(func)

    def multiply(
        self, handle: ColumnBatch, out_name: str, left: str, right: str | float
    ) -> ColumnBatch:
        return self.arith(handle, out_name, left, "*", right)

    def divide(self, handle: ColumnBatch, out_name: str, left: str, right: str) -> ColumnBatch:
        return self.arith(handle, out_name, left, "/", right)

    def arith(
        self, handle: ColumnBatch, out_name: str, left: str, op: str, right: str | float
    ) -> ColumnBatch:
        """Append ``out_name = left <op> right`` over every lane."""
        self._charge(handle.num_rows)
        lcol = handle.column(left)
        rval = handle.column(right) if isinstance(right, str) else right
        result = kernels.arithmetic(lcol, op, rval)
        ctype = ColumnType.FLOAT if np.asarray(result).dtype.kind == "f" else ColumnType.INT
        return handle.with_column(out_name, result, ctype)

    def compare(
        self, handle: ColumnBatch, out_name: str, left: str, op: str, right: str | float
    ) -> ColumnBatch:
        self._charge(handle.num_rows)
        lcol = handle.column(left)
        rval = handle.column(right) if isinstance(right, str) else right
        return handle.with_column(out_name, kernels.compare(lcol, op, rval), ColumnType.INT)

    def bool_op(
        self, handle: ColumnBatch, out_name: str, op: str, operands: Sequence[str]
    ) -> ColumnBatch:
        self._charge(handle.num_rows)
        cols = [handle.column(name) for name in operands]
        return handle.with_column(out_name, kernels.combine_bool(op, cols), ColumnType.INT)

    def sort_by(self, handle: ColumnBatch, column: str, ascending: bool = True) -> ColumnBatch:
        self._charge(handle.num_rows * 2)
        batch = handle.compact()
        return batch.take(kernels.sort_indices(batch.column(column), ascending))

    def merge_sorted(
        self, handles: Sequence[ColumnBatch], column: str, ascending: bool = True
    ) -> ColumnBatch:
        """Merge relations that are each sorted by ``column``."""
        handles = [h.compact() for h in handles]
        if len(handles) > 1:
            first = handles[0]
            columns = [
                np.concatenate([h.columns()[j] for h in handles])
                for j in range(len(first.schema))
            ]
            combined = ColumnBatch(first.schema, columns)
        else:
            combined = handles[0]
        self._charge(combined.num_rows)
        return combined.take(kernels.sort_indices(combined.column(column), ascending))

    def distinct(self, handle: ColumnBatch, columns: Sequence[str]) -> ColumnBatch:
        self._charge(handle.num_rows)
        projected = handle.compact().project(list(columns))
        if projected.num_rows == 0:
            return projected
        return projected.take(kernels.distinct_indices(projected.columns()))

    def limit(self, handle: ColumnBatch, n: int) -> ColumnBatch:
        batch = handle.compact()
        return ColumnBatch(batch.schema, [col[:n] for col in batch.columns()])

    def enumerate_rows(self, handle: ColumnBatch, out_name: str = "row_id") -> ColumnBatch:
        self._charge(handle.num_rows)
        batch = handle.compact()
        return batch.with_column(
            out_name, np.arange(batch.num_rows, dtype=np.int64), ColumnType.INT
        )

    # -- accounting --------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated seconds of vectorized local work performed so far."""
        if self.records_processed == 0 and self.jobs_run == 0:
            return 0.0
        return self.cost_model.seconds(self.records_processed)

    def reset_meter(self) -> None:
        self.records_processed = 0
        self.jobs_run = 0

    def _charge(self, records: int) -> None:
        self.records_processed += int(records)
