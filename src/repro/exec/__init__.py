"""Columnar vectorized execution engine.

The subsystem has four layers:

* :mod:`repro.exec.batch` — :class:`ColumnBatch`, the mask-carrying
  columnar data representation;
* :mod:`repro.exec.kernels` — pure NumPy kernels (vectorized compare /
  bool / map, mask filters, hash join, sort-based group-by), bit-identical
  to the row engine's ``Table`` methods;
* :mod:`repro.exec.engine` — :class:`ColumnarBackend`, the cleartext
  engine built from those kernels (same interface as ``PythonBackend``);
* :mod:`repro.exec.executor` — :class:`ColumnarExecutor`, a plan executor
  pinned to the columnar engine.

Selected at the API surface via ``run_query(..., executor="columnar")``;
see ``docs/executor.md``.
"""

from __future__ import annotations

from repro.exec.batch import ColumnBatch
from repro.exec.engine import ColumnarBackend, ColumnarCostModel

__all__ = [
    "ColumnBatch",
    "ColumnarBackend",
    "ColumnarCostModel",
    "ColumnarExecutor",
]


def __getattr__(name: str):
    # Imported lazily: ``exec.executor`` subclasses the runtime's
    # ``PlanExecutor``, which itself imports this package's engine — an
    # eager import here would be circular.
    if name == "ColumnarExecutor":
        from repro.exec.executor import ColumnarExecutor

        return ColumnarExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
