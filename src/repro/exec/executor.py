"""Batch-at-a-time plan execution.

:class:`ColumnarExecutor` is a :class:`~repro.runtime.executor.PlanExecutor`
that always runs its cleartext sub-plans on the columnar engine, whatever
the session's config says.  The operator DAG walk, the MPC boundary
handling, the leakage accounting and the mesh protocol are all inherited
unchanged — the columnar engine plugs in at the same seam the Spark
simulator does, which is exactly what makes the row engine usable as a
byte-identity oracle.

Most callers should not construct this directly: pass
``executor="columnar"`` to :func:`repro.core.compiler.run_query` (or set
``CompilationConfig.executor``) and every runtime — simulated, sockets,
service — picks the columnar engine through the ordinary config path.
This class exists for tests and tools that want a columnar executor over
explicit inputs without threading a config through.
"""

from __future__ import annotations

from repro.exec.engine import ColumnarBackend
from repro.runtime.executor import PlanExecutor


class ColumnarExecutor(PlanExecutor):
    """A plan executor pinned to the vectorized columnar engine."""

    def _make_cleartext_backend(self):
        return ColumnarBackend()
