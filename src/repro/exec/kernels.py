"""Vectorized kernels for the columnar engine.

Each kernel is a pure function over NumPy arrays; the engine
(:mod:`repro.exec.engine`) owns all schema bookkeeping.  The kernels are
written to be **bit-identical** to the row engine's
:class:`~repro.data.table.Table` methods, because the differential corpus
asserts byte equality between the two paths.  The subtle contracts:

* ``hash_join_indices`` must emit matches in the row engine's order:
  left-major, and for each left row the matching right rows in ascending
  right index.  A stable argsort of the right keys plus ``searchsorted``
  gives exactly that without any Python-level loop.
* ``segment_reduce`` must reproduce NumPy's reduction results exactly.
  Integer sums may use ``np.add.reduceat`` (wrapping int64 addition is
  associative, so grouping does not change the result), but float sums and
  means must reduce each group with the same pairwise-summation call the
  row engine uses (``group.sum()`` / ``group.mean()``) — ``reduceat``'s
  sequential accumulation can differ in the last ulp.
* ``distinct_indices`` must replicate ``Table.distinct`` including its
  quirk of stacking all columns into one 2-D array first (which upcasts
  everything to float64 when int and float columns mix).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Comparison operators shared by filter/compare kernels.
COMPARE_OPS: dict[str, Callable] = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def compare(lcol: np.ndarray, op: str, rval: np.ndarray | float) -> np.ndarray:
    """0/1 int64 flags for ``lcol <op> rval`` (column or public scalar)."""
    if op not in COMPARE_OPS:
        raise ValueError(f"unsupported comparison op {op!r}")
    return COMPARE_OPS[op](lcol, rval).astype(np.int64)


def filter_flags(col: np.ndarray, op: str, value: float) -> np.ndarray:
    """Boolean lane flags for a scalar filter predicate."""
    if op not in COMPARE_OPS:
        raise ValueError(f"unsupported filter op {op!r}")
    return COMPARE_OPS[op](col, value)


def combine_bool(op: str, cols: Sequence[np.ndarray]) -> np.ndarray:
    """Combine 0/1 columns with and/or/not; result is int64 0/1."""
    flags = [col != 0 for col in cols]
    if op == "and":
        result = np.logical_and.reduce(flags)
    elif op == "or":
        result = np.logical_or.reduce(flags)
    elif op == "not":
        if len(flags) != 1:
            raise ValueError("'not' takes exactly one operand column")
        result = np.logical_not(flags[0])
    else:
        raise ValueError(f"unsupported boolean op {op!r}")
    return np.asarray(result).astype(np.int64)


def arithmetic(lcol: np.ndarray, op: str, rval: np.ndarray | float) -> np.ndarray:
    """``lcol <op> rval`` with the row engine's zero-guarded division."""
    if op == "+":
        return lcol + rval
    if op == "-":
        return lcol - rval
    if op == "*":
        return lcol * rval
    if op == "/":
        divisor = np.asarray(rval, dtype=np.float64)
        return np.divide(
            lcol.astype(np.float64),
            divisor,
            out=np.zeros(len(lcol), dtype=np.float64),
            where=divisor != 0,
        )
    raise ValueError(f"unsupported arithmetic op {op!r}")


def sort_indices(key: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Stable sort order by a single key (``lexsort`` semantics).

    Descending order reverses the ascending permutation — including the
    reversed tie order — exactly as ``Table.sort_by`` does.
    """
    order = np.lexsort((key,))
    return order if ascending else order[::-1]


def hash_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join match pairs in the row engine's output order.

    Returns ``(left_idx, right_idx)`` with matches left-major and, per
    left row, right matches in ascending right index.  Implementation:
    stable-argsort the right keys, binary-search each left key's run
    (``searchsorted``), then expand the runs with a cumulative-offset
    trick — no Python loop over rows.
    """
    if left_keys.dtype != right_keys.dtype:
        # The row engine compares keys as Python scalars, where 2 == 2.0;
        # match that by comparing in a common dtype.
        left_keys = left_keys.astype(np.float64)
        right_keys = right_keys.astype(np.float64)
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    within = (
        np.arange(total, dtype=np.int64)
        - np.repeat(starts, counts)
        + np.repeat(lo, counts)
    )
    return left_idx, order[within]


def group_slices(key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort-based grouping of a single key column.

    Returns ``(order, starts, ends)``: a stable ascending permutation and
    the half-open ``[starts[g], ends[g])`` slice of each group within the
    sorted domain.  Groups come out in ascending key order with members in
    original row order — identical to the row engine's
    ``sorted(dict-of-first-occurrence)`` grouping.
    """
    n = len(key)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    starts = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
    ends = np.r_[starts[1:], n]
    return order, starts, ends


def segment_reduce(
    sorted_values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    func: str,
) -> np.ndarray:
    """Reduce each ``[start, end)`` segment of ``sorted_values`` with ``func``.

    Uses ``reduceat`` where it is exact (int sums, min/max) and falls back
    to per-group NumPy reductions where bit-identity with the row engine
    demands it (float sums, means) — see the module docstring.
    """
    if func == "count":
        return (ends - starts).astype(np.int64)
    if func == "min":
        return np.minimum.reduceat(sorted_values, starts)
    if func == "max":
        return np.maximum.reduceat(sorted_values, starts)
    if func == "sum" and sorted_values.dtype.kind != "f":
        return np.add.reduceat(sorted_values, starts)
    if func == "sum":
        groups = np.split(sorted_values, starts[1:])
        return np.array([group.sum() for group in groups])
    if func == "mean":
        groups = np.split(sorted_values, starts[1:])
        return np.array([float(group.mean()) for group in groups], dtype=np.float64)
    raise ValueError(f"unsupported aggregation {func!r}")


def distinct_indices(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Indices of the first occurrence of each distinct row, in row order.

    Replicates ``Table.distinct``: stack the columns (mixed dtypes upcast
    to float64, deliberately matching the row path), ``np.unique`` over
    rows, keep first occurrences in original order.
    """
    stacked = np.stack(list(columns), axis=1)
    _, idx = np.unique(stacked, axis=0, return_index=True)
    return np.sort(idx)
