"""Hybrid join protocol (§5.3, Figure 3).

An MPC join costs ``O(n*m)`` oblivious comparisons; when both key columns
share a selectively-trusted party, the matching can be outsourced: the STP
learns only the obliviously shuffled key columns, joins them in the clear,
and hands back *index relations* that let the parties reconstruct the joined
rows with an oblivious-indexing protocol costing
``O((n+m) log(n+m))`` — the asymptotic improvement Figure 5a measures.

Leakage: the STP learns the two key columns (in shuffled order); every party
learns the join's output cardinality.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.oblivious import oblivious_index, oblivious_shuffle
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SharedVector
from repro.mpc.sharemind import SharemindBackend


def hybrid_join(
    backend: SharemindBackend,
    stp: SelectivelyTrustedParty,
    left: SharedTable,
    right: SharedTable,
    left_on: str,
    right_on: str,
    leakage: LeakageReport | None = None,
    suffix: str = "_r",
) -> SharedTable:
    """Execute the hybrid join and return the secret-shared result."""
    engine = backend.engine
    leakage = leakage if leakage is not None else LeakageReport()

    # Step 1: obliviously shuffle both inputs so revealed keys are unlinkable
    # to input positions.
    left_cols = oblivious_shuffle(engine, left.columns)
    right_cols = oblivious_shuffle(engine, right.columns)
    left = SharedTable(engine, left.schema, left_cols)
    right = SharedTable(engine, right.schema, right_cols)

    # Step 2: project the key columns and reveal them to the STP.  The STP's
    # cleartext logic is replicated at every agent, so the reveal widens to
    # all engines — the leakage report records the disclosure either way.
    left_keys = engine.reveal_replicated(left.column(left_on))
    right_keys = engine.reveal_replicated(right.column(right_on))
    leakage.record(
        "column_reveal", f"hybrid_join({left_on})", [left_on, right_on], [stp.name],
        detail=f"{len(left_keys)}+{len(right_keys)} shuffled key values",
    )

    # Steps 3-5: the STP enumerates the key relations, joins them in the
    # clear, and returns the matching row indices for each side.
    key_schema_l = Schema([ColumnDef("key"), ColumnDef("left_idx")])
    key_schema_r = Schema([ColumnDef("key"), ColumnDef("right_idx")])
    left_enum = Table(key_schema_l, [left_keys, np.arange(len(left_keys), dtype=np.int64)])
    right_enum = Table(key_schema_r, [right_keys, np.arange(len(right_keys), dtype=np.int64)])
    joined_idx = stp.join(left_enum, right_enum, "key", "key")

    left_indices = joined_idx.column("left_idx")
    right_indices = joined_idx.column("right_idx")
    output_rows = joined_idx.num_rows
    leakage.record(
        "cardinality", f"hybrid_join({left_on})", [], [],
        detail=f"output rows = {output_rows} (visible to all parties)",
    )

    # The STP secret-shares the index relations back into the MPC.  The
    # indices are known to every (replicated-STP) engine, so this is a
    # public-value sharing from the shared environment stream.
    left_idx_shared = engine.input_vector(
        left_indices, contributor=engine.party_names[0], public=True
    )
    right_idx_shared = engine.input_vector(
        right_indices, contributor=engine.party_names[0], public=True
    )

    # Step 6: oblivious indexing selects the matching rows on both sides.
    left_rows = oblivious_index(engine, left.columns, left_idx_shared)
    right_keep = [
        (cdef, col)
        for cdef, col in zip(right.schema, right.columns)
        if cdef.name != right_on
    ]
    right_rows = oblivious_index(engine, [col for _, col in right_keep], right_idx_shared)

    # Step 7: concatenate column-wise and reshuffle the result.
    out_defs: list[ColumnDef] = list(left.schema.columns)
    out_cols: list[SharedVector] = list(left_rows)
    taken = {c.name for c in out_defs}
    for (cdef, _), col in zip(right_keep, right_rows):
        name = cdef.name + suffix if cdef.name in taken else cdef.name
        out_defs.append(ColumnDef(name, cdef.ctype, cdef.trust))
        out_cols.append(col)

    shuffled = oblivious_shuffle(engine, out_cols)
    return SharedTable(engine, Schema(out_defs), shuffled)
