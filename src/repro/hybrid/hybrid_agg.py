"""Hybrid aggregation protocol (§5.3).

The standard oblivious aggregation sorts the relation with an
``O(n log^2 n)`` comparison network before its accumulation scan.  When the
group-by column's trust set contains an STP, the sort can be done in the
clear: the parties obliviously shuffle the relation and reveal only the
shuffled group-by column to the STP, which sorts it, computes the
group-boundary (equality) flags, and returns the plaintext row ordering plus
secret-shared flags.  The parties then reorder their shares locally and run
the accumulation scan without any oblivious comparisons — only ``O(n)``
multiplications plus two ``O(n log n)``-cost oblivious shuffles remain,
which is the asymptotic improvement Figure 5b measures.

Leakage: the STP learns the (shuffled) group-by column; every party learns
the number of distinct groups (the output cardinality).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.oblivious import oblivious_shuffle
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SharedVector
from repro.mpc.sharemind import SharemindBackend


def hybrid_aggregate(
    backend: SharemindBackend,
    stp: SelectivelyTrustedParty,
    table: SharedTable,
    group_col: str,
    agg_col: str | None,
    func: str,
    out_name: str,
    leakage: LeakageReport | None = None,
) -> SharedTable:
    """Execute the hybrid aggregation and return the secret-shared result."""
    func = func.lower()
    if func not in ("sum", "count"):
        raise ValueError(f"hybrid aggregation supports sum/count, got {func!r}")
    engine = backend.engine
    leakage = leakage if leakage is not None else LeakageReport()
    n = table.num_rows

    if func == "count":
        value_col = engine.constant(np.ones(n, dtype=np.int64))
        out_type = ColumnType.INT
    else:
        value_col = table.column(agg_col)
        out_type = table.schema[agg_col].ctype
    key_col = table.column(group_col)
    out_schema = Schema([table.schema[group_col], ColumnDef(out_name, out_type)])

    if n == 0:
        empty = engine.empty_vector()
        return SharedTable(engine, out_schema, [empty, empty])

    # Step 1: oblivious shuffle, then reveal the shuffled group-by column.
    shuffled = oblivious_shuffle(engine, [key_col, value_col])
    key_col, value_col = shuffled[0], shuffled[1]
    # The STP logic is replicated at every agent, so the reveal widens to
    # all engines — the leakage report records the disclosure either way.
    revealed_keys = engine.reveal_replicated(key_col)
    leakage.record(
        "column_reveal", f"hybrid_aggregate({group_col})", [group_col], [stp.name],
        detail=f"{n} shuffled group-by values",
    )

    # Steps 2-5 (at the STP, in the clear): enumerate, sort by key, compute
    # equality flags, return the plaintext ordering and secret-share the flags.
    order = np.argsort(revealed_keys, kind="stable").astype(np.int64)
    sorted_keys = revealed_keys[order]
    equal_prev = np.zeros(n, dtype=np.int64)
    if n > 1:
        equal_prev[1:] = (sorted_keys[1:] == sorted_keys[:-1]).astype(np.int64)
    _charge_stp_sort(stp, n)

    # The plaintext ordering is public; the flags (known to every
    # replicated-STP engine) are secret-shared back into MPC.
    flags = engine.input_vector(
        equal_prev, contributor=engine.party_names[0], public=True
    )

    # Step 6: parties reorder the shuffled relation by the public ordering.
    key_sorted = SharedVector(engine, [s[order] for s in key_col.shares])
    value_sorted = SharedVector(engine, [s[order] for s in value_col.shares])
    engine.meter.local_ops += 2 * n

    # Step 7: oblivious accumulation scan.  acc[i] += equal_prev[i] * acc[i-1].
    acc = SharedVector(engine, [s.copy() for s in value_sorted.shares])
    for i in range(1, n):
        flag_i = SharedVector(engine, [s[i : i + 1] for s in flags.shares])
        prev = SharedVector(engine, [s[i - 1 : i] for s in acc.shares])
        cur = SharedVector(engine, [s[i : i + 1] for s in acc.shares])
        new_val = engine.add(cur, engine.mul(flag_i, prev))
        for p in range(engine.num_local_shares):
            acc.shares[p][i] = new_val.shares[p][0]

    # A row is the last of its group iff the next row starts a new group.
    keep = np.ones(n, dtype=np.int64)
    keep[: n - 1] = 1 - equal_prev[1:]
    keep_flags = engine.input_vector(keep, contributor=engine.party_names[0], public=True)

    # Step 8: shuffle, reveal the keep flags, and discard non-final rows.
    shuffled_out = oblivious_shuffle(engine, [keep_flags, key_sorted, acc])
    flag_values = engine.open(shuffled_out[0])
    keep_idx = np.nonzero(flag_values)[0]
    leakage.record(
        "cardinality", f"hybrid_aggregate({group_col})", [], [],
        detail=f"output rows = {len(keep_idx)} (visible to all parties)",
    )
    key_out = SharedVector(engine, [s[keep_idx] for s in shuffled_out[1].shares])
    val_out = SharedVector(engine, [s[keep_idx] for s in shuffled_out[2].shares])
    return SharedTable(engine, out_schema, [key_out, val_out])


def _charge_stp_sort(stp: SelectivelyTrustedParty, n: int) -> None:
    """Charge the STP's cleartext engine for sorting ``n`` key values."""
    engine = stp.engine
    if hasattr(engine, "stats"):  # Spark-like backend
        engine.stats.jobs += 1
        engine.stats.stages += 1
        engine.stats.tasks += max(1, getattr(engine, "default_partitions", 1))
        engine.stats.records_processed += 2 * n
        engine.stats.records_shuffled += n
    elif hasattr(engine, "records_processed"):  # sequential Python backend
        engine.records_processed += 2 * n
        engine.jobs_run += 1
