"""Hybrid MPC–cleartext protocol runtimes (§5.3).

Each protocol combines oblivious steps executed by the secret-sharing MPC
backend with cleartext steps executed at a selectively-trusted party (STP)
or, for the public join, at an arbitrary host party:

* :mod:`repro.hybrid.hybrid_join` — the STP learns only the (shuffled) join
  key columns, joins them in the clear, and returns index relations that the
  parties use for oblivious selection.
* :mod:`repro.hybrid.public_join` — both key columns are public; the host
  joins them in the clear and broadcasts public row indices, so no oblivious
  work is needed at all.
* :mod:`repro.hybrid.hybrid_agg` — the STP learns the shuffled group-by
  column, sorts and groups it in the clear, and returns ordering information
  plus secret-shared equality flags for the oblivious accumulation scan.

Every protocol records what it revealed and to whom in a
:class:`~repro.hybrid.stp.LeakageReport`.
"""

from repro.hybrid.stp import LeakageEvent, LeakageReport, SelectivelyTrustedParty
from repro.hybrid.hybrid_join import hybrid_join
from repro.hybrid.public_join import public_join
from repro.hybrid.hybrid_agg import hybrid_aggregate

__all__ = [
    "LeakageEvent",
    "LeakageReport",
    "SelectivelyTrustedParty",
    "hybrid_join",
    "public_join",
    "hybrid_aggregate",
]
