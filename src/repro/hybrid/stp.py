"""The selectively-trusted party (STP) and leakage accounting.

Hybrid protocols "create a server-aided setting with leakage" (§3.2): the
STP performs cleartext work on columns it was explicitly authorised to see,
and all parties learn the cardinalities of hybrid inputs and outputs.  The
classes here model the STP's local compute (re-using a cleartext backend)
and record every reveal in a :class:`LeakageReport` so callers — and the
tests — can audit exactly what left the cryptographic envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.table import Table


@dataclass(frozen=True)
class LeakageEvent:
    """One disclosure made outside the MPC's cryptographic guarantees."""

    #: Kind of disclosure: ``column_reveal``, ``cardinality``, ``output`` or
    #: ``cleartext_transfer``.
    kind: str
    #: Relation the disclosure concerns.
    relation: str
    #: Columns disclosed (empty for pure cardinality leakage).
    columns: tuple[str, ...]
    #: Parties that learn the disclosed data.
    parties: tuple[str, ...]
    #: Free-text detail (e.g. the row count for cardinality events).
    detail: str = ""


@dataclass
class LeakageReport:
    """Accumulates every disclosure of one query execution."""

    events: list[LeakageEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        relation: str,
        columns: Sequence[str] = (),
        parties: Sequence[str] = (),
        detail: str = "",
    ) -> None:
        self.events.append(
            LeakageEvent(kind, relation, tuple(columns), tuple(parties), detail)
        )

    def column_reveals_to(self, party: str) -> list[LeakageEvent]:
        """All column disclosures a given party received."""
        return [
            e for e in self.events if e.kind == "column_reveal" and party in e.parties
        ]

    def cardinality_events(self) -> list[LeakageEvent]:
        return [e for e in self.events if e.kind == "cardinality"]

    def summary(self) -> str:
        lines = []
        for e in self.events:
            cols = ",".join(e.columns) if e.columns else "-"
            parties = ",".join(e.parties) if e.parties else "all"
            lines.append(f"{e.kind:<18} rel={e.relation:<28} cols={cols:<20} to={parties} {e.detail}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


class SelectivelyTrustedParty:
    """The aiding party of the hybrid protocols.

    Wraps the party's cleartext backend so the hybrid protocols can run
    their cleartext steps (enumeration, join, sort, flag computation) on it
    while the simulated clock charges that work to the STP's local engine.
    """

    def __init__(self, name: str, engine):
        self.name = name
        self.engine = engine

    def ingest(self, table: Table):
        return self.engine.ingest(table, contributor=self.name)

    def collect(self, handle) -> Table:
        return self.engine.collect(handle)

    def join(self, left: Table, right: Table, left_on: str, right_on: str) -> Table:
        lh = self.engine.ingest(left, contributor=self.name)
        rh = self.engine.ingest(right, contributor=self.name)
        return self.engine.collect(self.engine.join(lh, rh, left_on, right_on))

    def sort(self, table: Table, column: str) -> Table:
        handle = self.engine.ingest(table, contributor=self.name)
        return self.engine.collect(self.engine.sort_by(handle, column))

    def elapsed_seconds(self) -> float:
        return self.engine.elapsed_seconds()
