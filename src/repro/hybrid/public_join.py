"""Public join protocol (§5.3).

When the join key columns on both sides are public, any party may see them.
The protocol sends the key columns to a host party, which enumerates and
joins them in the clear and broadcasts the matching row-index pairs.  The
indices are public, so the parties can gather the matching rows from the
secret-shared inputs locally — no oblivious shuffling or indexing is needed,
"avoiding the use of MPC altogether" for the matching step (the local
cleartext join at the host is the bottleneck, as Figure 5a shows).

Leakage: every party may learn the key columns (they are public by
annotation) and the output cardinality.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SharedVector
from repro.mpc.sharemind import SharemindBackend


def public_join(
    backend: SharemindBackend,
    host: SelectivelyTrustedParty,
    left: SharedTable,
    right: SharedTable,
    left_on: str,
    right_on: str,
    leakage: LeakageReport | None = None,
    suffix: str = "_r",
) -> SharedTable:
    """Execute the public join and return the secret-shared result."""
    engine = backend.engine
    leakage = leakage if leakage is not None else LeakageReport()

    # Send the (public) key columns to the host party.  The host's cleartext
    # join is replicated at every agent, so the reveal widens to all engines
    # — the columns are public by annotation, so nothing extra is disclosed.
    left_keys = engine.reveal_replicated(left.column(left_on))
    right_keys = engine.reveal_replicated(right.column(right_on))
    leakage.record(
        "column_reveal", f"public_join({left_on})", [left_on, right_on], [host.name],
        detail="public key columns",
    )

    # The host enumerates and joins the keys in the clear.
    left_enum = Table(
        Schema([ColumnDef("key"), ColumnDef("left_idx")]),
        [left_keys, np.arange(len(left_keys), dtype=np.int64)],
    )
    right_enum = Table(
        Schema([ColumnDef("key"), ColumnDef("right_idx")]),
        [right_keys, np.arange(len(right_keys), dtype=np.int64)],
    )
    joined_idx = host.join(left_enum, right_enum, "key", "key")
    left_indices = joined_idx.column("left_idx")
    right_indices = joined_idx.column("right_idx")
    leakage.record(
        "cardinality", f"public_join({left_on})", [], [],
        detail=f"output rows = {joined_idx.num_rows} (indices broadcast to all parties)",
    )

    # The indices are public, so each party gathers the matching rows from
    # its shares locally — no oblivious operations needed.
    out_defs: list[ColumnDef] = list(left.schema.columns)
    out_cols: list[SharedVector] = [
        _public_gather(engine, col, left_indices) for col in left.columns
    ]
    taken = {c.name for c in out_defs}
    for cdef, col in zip(right.schema, right.columns):
        if cdef.name == right_on:
            continue
        name = cdef.name + suffix if cdef.name in taken else cdef.name
        out_defs.append(ColumnDef(name, cdef.ctype, cdef.trust))
        out_cols.append(_public_gather(engine, col, right_indices))

    return SharedTable(engine, Schema(out_defs), out_cols)


def _public_gather(engine, vec: SharedVector, indices: np.ndarray) -> SharedVector:
    indices = np.asarray(indices, dtype=np.int64)
    engine.meter.local_ops += len(indices)
    return SharedVector(engine, [share[indices] for share in vec.shares])
