"""The paper's evaluation queries, expressed against the public frontend.

Examples, tests and the benchmark harness all need the same four queries
(§2.1, §7): market concentration (HHI), credit-card regulation, aspirin
count, and comorbidity.  Each helper builds the query in a fresh
:class:`~repro.core.lang.QueryContext` and returns it together with the
party names and the names of the input/output relations, so callers only
have to supply data.

The queries are written against the expression API (``col()`` predicates,
``on=`` join keys, multi-aggregate ``aggregate`` calls); the lowering emits
exactly the operator DAG the pre-redesign builders produced, so compiled
plans — including the MPC operator counts and hybrid rewrites the paper's
figures depend on — are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.expr import col
from repro.core.lang import QueryContext
from repro.core.party import Party
from repro.core.types import COUNT, Column, INT, SUM


@dataclass
class QuerySpec:
    """A built query plus the metadata callers need to run it."""

    context: QueryContext
    parties: list[str]
    input_relations: dict[str, list[str]]
    output_relation: str
    #: Extra information specific to the query (e.g. the STP party).
    info: dict = field(default_factory=dict)


def run_spec(
    spec: QuerySpec,
    inputs,
    config=None,
    seed: int = 0,
    runtime: str = "simulated",
    timeout: float = 60.0,
):
    """Compile and execute a :class:`QuerySpec` on the chosen runtime.

    ``inputs`` maps party name -> {relation name -> Table}, matching
    ``spec.input_relations``.  ``runtime`` is ``"simulated"`` (every party in
    this process) or ``"sockets"`` (one OS process per party, cross-party
    traffic over real TCP); both produce byte-identical results.  ``timeout``
    bounds the socket runtime's blocking operations.
    """
    from repro.core.compiler import run_query

    return run_query(spec.context, inputs, config, seed=seed, runtime=runtime, timeout=timeout)


def market_concentration_query(
    party_names: list[str] | None = None, rows_per_party: int | None = None
) -> QuerySpec:
    """The HHI query of Listing 2 over three vehicle-for-hire companies.

    Each company contributes a (companyID, price) trip relation; the query
    filters zero-fare trips, sums revenue per company, derives market shares
    and outputs the Herfindahl-Hirschman index to the first party.
    """
    party_names = party_names or ["mpc.a.com", "mpc.b.com", "mpc.c.org"]
    parties = [Party(name) for name in party_names]
    schema = [Column("companyID", INT), Column("price", INT)]

    with QueryContext() as ctx:
        inputs = [
            ctx.new_table(f"trips_{i}", schema, at=p, estimated_rows=rows_per_party)
            for i, p in enumerate(parties)
        ]
        taxi_data = ctx.concat(inputs, name="taxi_data")
        nonzero = taxi_data.filter(col("price") > 0, name="paid_trips")
        rev = nonzero.project(["companyID", "price"]).aggregate(
            group=["companyID"], aggs={"local_rev": SUM("price")}, name="revenue"
        )
        market_size = rev.aggregate(aggs={"total_rev": SUM("local_rev")}, name="market_size")
        # Attach the (single-row) market size to every company row by joining
        # on a constant key.
        rev_keyed = rev.with_column("mkey", col("companyID") * 0, name="revenue_keyed")
        market_keyed = market_size.with_column("mkey", col("total_rev") * 0, name="market_keyed")
        share = rev_keyed.join(market_keyed, on="mkey", name="share_join").with_column(
            "m_share", col("local_rev") / col("total_rev"), name="market_share"
        )
        hhi = share.with_column(
            "ms_squared", col("m_share") * col("m_share"), name="share_squared"
        ).aggregate(aggs={"hhi": SUM("ms_squared")}, name="hhi_sum")
        hhi.collect("hhi_result", to=[parties[0]])

    return QuerySpec(
        context=ctx,
        parties=party_names,
        input_relations={name: [f"trips_{i}"] for i, name in enumerate(party_names)},
        output_relation="hhi_result",
    )


def credit_card_regulation_query(
    regulator: str = "mpc.ftc.gov",
    agencies: list[str] | None = None,
    rows_demographics: int | None = None,
    rows_per_agency: int | None = None,
) -> QuerySpec:
    """The credit-card regulation query of Listing 1.

    The regulator owns a (ssn, zip) demographics relation; each credit
    agency owns (ssn, score) rows and trusts the regulator — but not the
    other agencies — with the SSN column.  The query computes the average
    credit score per ZIP code for the regulator.
    """
    agencies = agencies or ["mpc.bank-a.com", "mpc.bank-b.cash"]
    p_reg = Party(regulator)
    p_agencies = [Party(a) for a in agencies]

    demo_schema = [Column("ssn", INT), Column("zip", INT)]
    bank_schema = [Column("ssn", INT, trust=[p_reg]), Column("score", INT)]

    with QueryContext() as ctx:
        demographics = ctx.new_table(
            "demographics", demo_schema, at=p_reg, estimated_rows=rows_demographics
        )
        scores = [
            ctx.new_table(f"scores_{i}", bank_schema, at=p, estimated_rows=rows_per_agency)
            for i, p in enumerate(p_agencies)
        ]
        all_scores = ctx.concat(scores, name="scores")
        joined = demographics.join(all_scores, on="ssn", name="joined")
        # One aggregate call, two aggregates: lowers to two Aggregate
        # operators joined on the group key — the same plan the paper's
        # Listing 1 compiles to.
        stats = joined.aggregate(
            group=["zip"], aggs={"total": SUM("score"), "cnt": COUNT()}, name="stats_by_zip"
        )
        avg = stats.with_column(
            "avg_score", col("total") / col("cnt"), name="avg_scores_rel"
        )
        avg.collect("avg_scores", to=[p_reg])

    inputs = {regulator: ["demographics"]}
    for i, name in enumerate(agencies):
        inputs[name] = [f"scores_{i}"]
    return QuerySpec(
        context=ctx,
        parties=[regulator, *agencies],
        input_relations=inputs,
        output_relation="avg_scores",
        info={"stp": regulator},
    )


def aspirin_count_query(
    hospitals: list[str] | None = None,
    analyst: str | None = None,
    rows_per_relation: int | None = None,
    heart_disease_code: int = 414,
    aspirin_code: int = 1191,
) -> QuerySpec:
    """SMCQL's aspirin-count query (§7.4, Figure 7a).

    Two hospitals hold diagnoses and medications keyed by a *public*
    anonymised patient id.  The query joins the two relations on patient id,
    keeps heart-disease diagnoses with aspirin prescriptions, and counts the
    distinct patients.  The public patient-id columns let Conclave use its
    public join; the diagnosis/medication columns stay private.
    """
    hospitals = hospitals or ["mpc.hospital-1.org", "mpc.hospital-2.org"]
    analyst = analyst or hospitals[0]
    p_hospitals = [Party(h) for h in hospitals]
    p_analyst = Party(analyst)

    diag_schema = [Column("patient_id", INT, public=True), Column("diagnosis", INT)]
    med_schema = [Column("patient_id", INT, public=True), Column("medication", INT)]

    with QueryContext() as ctx:
        diagnoses = [
            ctx.new_table(f"diagnoses_{i}", diag_schema, at=p, estimated_rows=rows_per_relation)
            for i, p in enumerate(p_hospitals)
        ]
        medications = [
            ctx.new_table(f"medications_{i}", med_schema, at=p, estimated_rows=rows_per_relation)
            for i, p in enumerate(p_hospitals)
        ]
        all_diag = ctx.concat(diagnoses, name="diagnoses")
        all_meds = ctx.concat(medications, name="medications")
        joined = all_diag.join(all_meds, on="patient_id", name="rx_join")
        # A compound predicate of simple comparisons lowers to a chain of
        # Filter operators — identical to the two separate filters the
        # pre-redesign query used.
        on_aspirin = joined.filter(
            (col("diagnosis") == heart_disease_code) & (col("medication") == aspirin_code),
            name="aspirin",
        )
        patients = on_aspirin.distinct(["patient_id"], name="distinct_patients")
        count = patients.aggregate(aggs={"aspirin_count": COUNT()}, name="aspirin_count_rel")
        count.collect("aspirin_count", to=[p_analyst])

    inputs = {h: [f"diagnoses_{i}", f"medications_{i}"] for i, h in enumerate(hospitals)}
    return QuerySpec(
        context=ctx,
        parties=hospitals,
        input_relations=inputs,
        output_relation="aspirin_count",
        info={"heart_disease_code": heart_disease_code, "aspirin_code": aspirin_code},
    )


def comorbidity_query(
    hospitals: list[str] | None = None,
    analyst: str | None = None,
    rows_per_relation: int | None = None,
    top_k: int = 10,
) -> QuerySpec:
    """SMCQL's comorbidity query (§7.4, Figure 7b).

    Two hospitals hold the diagnoses of their c. diff cohorts (private
    diagnosis codes).  The query counts diagnoses across both cohorts and
    returns the ``top_k`` most common ones to the analyst.
    """
    hospitals = hospitals or ["mpc.hospital-1.org", "mpc.hospital-2.org"]
    analyst = analyst or hospitals[0]
    p_hospitals = [Party(h) for h in hospitals]
    p_analyst = Party(analyst)

    diag_schema = [Column("patient_id", INT, public=True), Column("diagnosis", INT)]

    with QueryContext() as ctx:
        diagnoses = [
            ctx.new_table(f"diagnoses_{i}", diag_schema, at=p, estimated_rows=rows_per_relation)
            for i, p in enumerate(p_hospitals)
        ]
        all_diag = ctx.concat(diagnoses, name="diagnoses")
        counts = all_diag.aggregate(
            group=["diagnosis"], aggs={"cnt": COUNT()}, name="diag_counts"
        )
        top = counts.sort_by("cnt", ascending=False, name="ordered_counts").limit(
            top_k, name="top_diagnoses"
        )
        top.collect("comorbidity", to=[p_analyst])

    inputs = {h: [f"diagnoses_{i}"] for i, h in enumerate(hospitals)}
    return QuerySpec(
        context=ctx,
        parties=hospitals,
        input_relations=inputs,
        output_relation="comorbidity",
        info={"top_k": top_k},
    )
