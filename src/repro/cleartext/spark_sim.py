"""Spark-like data-parallel cleartext backend.

The paper runs each party's local cleartext work on a small Spark cluster
(three 2-vCPU workers per party) and the "insecure" baseline on a joint
nine-node cluster.  Offline we cannot run Spark, so this module implements a
miniature dataflow engine with the parts that matter for the evaluation:

* relations are split into hash partitions (:class:`PartitionedRelation`);
* narrow operators (project, filter, arithmetic) run independently per
  partition (one *task* each);
* wide operators (join, grouped aggregation, distinct, sort) first perform a
  hash *shuffle* by key, then run per-partition tasks; grouped aggregations
  additionally do partial (map-side) pre-aggregation, like Spark's
  ``reduceByKey``;
* a :class:`SparkCostModel` converts the counted task, record and shuffle
  volumes into simulated seconds for a cluster with a given core count.

Results are exact (the engine really executes the operators), and the
simulated runtime captures the linear-with-data, parallelism-limited
behaviour that makes cleartext processing several orders of magnitude faster
than MPC in Figures 1 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table


@dataclass(frozen=True)
class SparkCostModel:
    """Cost model for the simulated data-parallel cluster."""

    #: Total executor cores available to one job.
    total_cores: int = 6
    #: Fixed driver/job-submission overhead per job.
    job_overhead_seconds: float = 4.0
    #: Scheduling overhead per stage.
    stage_overhead_seconds: float = 1.0
    #: Task launch overhead.
    task_overhead_seconds: float = 0.05
    #: CPU seconds per record per narrow operator pass (one core).
    per_record_seconds: float = 1.5e-6
    #: Extra seconds per record moved through a shuffle (serialise, network,
    #: deserialise).
    per_shuffle_record_seconds: float = 5.0e-6

    def seconds(self, stats: "SparkStats") -> float:
        compute = stats.records_processed * self.per_record_seconds
        shuffle = stats.records_shuffled * self.per_shuffle_record_seconds
        parallel = (compute + shuffle) / max(1, self.total_cores)
        overhead = (
            stats.jobs * self.job_overhead_seconds
            + stats.stages * self.stage_overhead_seconds
            + stats.tasks * self.task_overhead_seconds / max(1, self.total_cores)
        )
        return parallel + overhead


@dataclass
class SparkStats:
    """Counters of the work a simulated Spark backend performed."""

    jobs: int = 0
    stages: int = 0
    tasks: int = 0
    records_processed: int = 0
    records_shuffled: int = 0

    def reset(self) -> None:
        self.jobs = 0
        self.stages = 0
        self.tasks = 0
        self.records_processed = 0
        self.records_shuffled = 0


@dataclass
class PartitionedRelation:
    """A relation split into hash partitions (the backend's native handle)."""

    schema: Schema
    partitions: list[Table] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self.partitions)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def collect(self) -> Table:
        """Materialise the relation as a single table."""
        non_empty = [p for p in self.partitions if p.num_rows > 0]
        if not non_empty:
            return Table.empty(self.schema)
        return non_empty[0].concat(*non_empty[1:])


class SparkBackend:
    """Partitioned data-parallel cleartext backend."""

    name = "spark"
    is_mpc = False

    def __init__(
        self,
        cost_model: SparkCostModel | None = None,
        default_partitions: int = 6,
    ):
        if default_partitions < 1:
            raise ValueError("a Spark job needs at least one partition")
        self.cost_model = cost_model or SparkCostModel()
        self.default_partitions = default_partitions
        self.stats = SparkStats()

    # -- data movement -------------------------------------------------------------------

    def ingest(self, table: Table, contributor: str | None = None) -> PartitionedRelation:
        """Load a relation and split it round-robin into partitions."""
        self.stats.jobs += 1
        parts = self._round_robin_split(table, self.default_partitions)
        self._narrow_stage(parts)
        return PartitionedRelation(table.schema, parts)

    def collect(self, handle: PartitionedRelation) -> Table:
        return handle.collect()

    reveal = collect

    # -- narrow operators ---------------------------------------------------------------------

    def concat(self, handles: Sequence[PartitionedRelation]) -> PartitionedRelation:
        handles = list(handles)
        schema = handles[0].schema
        partitions = [p for h in handles for p in h.partitions]
        self._narrow_stage(partitions)
        return PartitionedRelation(schema, partitions)

    def project(self, handle: PartitionedRelation, columns: Sequence[str]) -> PartitionedRelation:
        columns = list(columns)
        parts = [p.project(columns) for p in handle.partitions]
        self._narrow_stage(parts)
        return PartitionedRelation(handle.schema.project(columns), parts)

    def filter(self, handle: PartitionedRelation, column: str, op: str, value: float) -> PartitionedRelation:
        parts = [p.filter(column, op, value) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        return PartitionedRelation(handle.schema, parts)

    def multiply(self, handle: PartitionedRelation, out_name: str, left: str, right: str | float) -> PartitionedRelation:
        parts = [p.arithmetic(out_name, left, "*", right) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def divide(self, handle: PartitionedRelation, out_name: str, left: str, right: str) -> PartitionedRelation:
        parts = [p.arithmetic(out_name, left, "/", right) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def arith(self, handle: PartitionedRelation, out_name: str, left: str, op: str, right: str | float) -> PartitionedRelation:
        parts = [p.arithmetic(out_name, left, op, right) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def compare(self, handle: PartitionedRelation, out_name: str, left: str, op: str, right: str | float) -> PartitionedRelation:
        parts = [p.compare(out_name, left, op, right) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def bool_op(self, handle: PartitionedRelation, out_name: str, op: str, operands: Sequence[str]) -> PartitionedRelation:
        operands = list(operands)
        parts = [p.bool_op(out_name, op, operands) for p in handle.partitions]
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def enumerate_rows(self, handle: PartitionedRelation, out_name: str = "row_id") -> PartitionedRelation:
        """Append a globally unique, contiguous row identifier."""
        parts = []
        offset = 0
        for p in handle.partitions:
            ids = np.arange(offset, offset + p.num_rows, dtype=np.int64)
            parts.append(p.with_column(out_name, ids))
            offset += p.num_rows
        self._narrow_stage(handle.partitions)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def limit(self, handle: PartitionedRelation, n: int) -> PartitionedRelation:
        collected = handle.collect().limit(n)
        self._narrow_stage(handle.partitions)
        return PartitionedRelation(handle.schema, [collected])

    # -- wide operators (shuffles) ----------------------------------------------------------------

    def join(
        self,
        left: PartitionedRelation,
        right: PartitionedRelation,
        left_on: str,
        right_on: str,
    ) -> PartitionedRelation:
        num_parts = max(left.num_partitions, right.num_partitions, 1)
        left_shuffled = self._hash_shuffle(left, left_on, num_parts)
        right_shuffled = self._hash_shuffle(right, right_on, num_parts)
        parts = [
            lp.join(rp, [left_on], [right_on])
            for lp, rp in zip(left_shuffled, right_shuffled)
        ]
        self._wide_stage(parts)
        schema = parts[0].schema if parts else left.schema
        return PartitionedRelation(schema, parts)

    def aggregate(
        self,
        handle: PartitionedRelation,
        group_by: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
        presorted: bool = False,
    ) -> PartitionedRelation:
        func = func.lower()
        group = [group_by] if group_by else []

        if not group:
            # Whole-relation reduction: partial per partition, final on driver.
            partials = [p.aggregate([], agg_col, func, out_name) for p in handle.partitions]
            self._narrow_stage(handle.partitions)
            combined = partials[0].concat(*partials[1:]) if len(partials) > 1 else partials[0]
            final = self._combine_partials(combined, [], func, out_name)
            return PartitionedRelation(final.schema, [final])

        if func in ("sum", "count", "min", "max"):
            # Map-side partial aggregation (reduceByKey-style).
            partials = [p.aggregate(group, agg_col, func, out_name) for p in handle.partitions]
            self._narrow_stage(handle.partitions)
            partial_rel = PartitionedRelation(partials[0].schema, partials)
            shuffled = self._hash_shuffle(partial_rel, group_by, max(handle.num_partitions, 1))
            parts = [self._combine_partials(p, group, func, out_name) for p in shuffled]
            self._wide_stage(parts)
        else:
            shuffled = self._hash_shuffle(handle, group_by, max(handle.num_partitions, 1))
            parts = [p.aggregate(group, agg_col, func, out_name) for p in shuffled]
            self._wide_stage(parts)
        schema = parts[0].schema if parts else handle.schema
        return PartitionedRelation(schema, parts)

    def distinct(self, handle: PartitionedRelation, columns: Sequence[str]) -> PartitionedRelation:
        columns = list(columns)
        projected = self.project(handle, columns)
        shuffled = self._hash_shuffle(projected, columns[0], max(handle.num_partitions, 1))
        parts = [p.distinct(columns) for p in shuffled]
        self._wide_stage(parts)
        schema = parts[0].schema if parts else projected.schema
        return PartitionedRelation(schema, parts)

    def sort_by(self, handle: PartitionedRelation, column: str, ascending: bool = True) -> PartitionedRelation:
        """Total sort: range-free implementation via a single-partition stage."""
        collected = handle.collect().sort_by([column], ascending=ascending)
        self.stats.records_shuffled += handle.num_rows
        self._wide_stage([collected])
        return PartitionedRelation(handle.schema, [collected])

    def merge_sorted(
        self, handles: Sequence[PartitionedRelation], column: str, ascending: bool = True
    ) -> PartitionedRelation:
        """Merge relations that are each sorted by ``column``."""
        handles = list(handles)
        combined = self.concat(handles)
        return self.sort_by(combined, column, ascending=ascending)

    # -- accounting -----------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated seconds of data-parallel work performed so far."""
        return self.cost_model.seconds(self.stats)

    def reset_meter(self) -> None:
        self.stats.reset()

    # -- internals ------------------------------------------------------------------------

    def _round_robin_split(self, table: Table, num_parts: int) -> list[Table]:
        if table.num_rows == 0:
            return [table]
        num_parts = min(num_parts, max(1, table.num_rows))
        indices = np.arange(table.num_rows)
        return [table.take(indices[indices % num_parts == i]) for i in range(num_parts)]

    def _hash_shuffle(
        self, relation: PartitionedRelation, key: str, num_parts: int
    ) -> list[Table]:
        """Repartition a relation by hash of ``key`` into ``num_parts`` partitions."""
        buckets: list[list[Table]] = [[] for _ in range(num_parts)]
        for part in relation.partitions:
            if part.num_rows == 0:
                continue
            hashes = part.column(key).astype(np.int64) % num_parts
            for b in range(num_parts):
                chunk = part.select_rows(hashes == b)
                if chunk.num_rows:
                    buckets[b].append(chunk)
        self.stats.records_shuffled += relation.num_rows
        out = []
        for b in range(num_parts):
            if buckets[b]:
                out.append(buckets[b][0].concat(*buckets[b][1:]))
            else:
                out.append(Table.empty(relation.schema))
        return out

    def _combine_partials(self, table: Table, group: list[str], func: str, out_name: str) -> Table:
        """Merge map-side partial aggregates into the final values."""
        merge_func = "sum" if func in ("sum", "count") else func
        return table.aggregate(group, out_name, merge_func, out_name)

    def _narrow_stage(self, partitions: Sequence[Table]) -> None:
        self.stats.stages += 1
        self.stats.tasks += max(1, len(partitions))
        self.stats.records_processed += sum(p.num_rows for p in partitions)

    def _wide_stage(self, partitions: Sequence[Table]) -> None:
        self.stats.stages += 1
        self.stats.tasks += max(1, len(partitions))
        self.stats.records_processed += sum(p.num_rows for p in partitions)
