"""Cleartext processing engines.

Conclave executes the non-MPC parts of a query on a local cleartext engine:
sequential Python when nothing else is available, or a data-parallel system
(Spark in the paper) when one is deployed.  The reproduction provides both:

* :class:`~repro.cleartext.python_engine.PythonBackend` — a straightforward
  sequential engine over :class:`~repro.data.table.Table`.
* :class:`~repro.cleartext.spark_sim.SparkBackend` — a miniature
  partition/stage/task dataflow engine with hash shuffles, partial
  aggregation and a calibrated cost model, standing in for Apache Spark.
"""

from repro.cleartext.python_engine import PythonBackend
from repro.cleartext.spark_sim import SparkBackend, SparkCostModel

__all__ = ["PythonBackend", "SparkBackend", "SparkCostModel"]
