"""Sequential Python cleartext backend.

The simplest execution target: every operator maps directly onto the
corresponding :class:`~repro.data.table.Table` method, executed in-process
on a single core.  The paper uses plain Python for local work when no
data-parallel framework is configured (§4.1); this backend plays that role
and also serves as the semantic reference implementation against which the
MPC backends and the Spark simulator are tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.table import Table


@dataclass(frozen=True)
class PythonCostModel:
    """Cost model for single-core local processing."""

    #: Fixed per-job interpreter/start-up overhead.
    startup_seconds: float = 0.1
    #: Seconds per record per operator pass on one core.
    per_record_seconds: float = 1.0e-6

    def seconds(self, records_processed: int) -> float:
        return self.startup_seconds + records_processed * self.per_record_seconds


class PythonBackend:
    """Sequential cleartext backend operating directly on tables."""

    name = "python"
    is_mpc = False

    def __init__(self, cost_model: PythonCostModel | None = None):
        self.cost_model = cost_model or PythonCostModel()
        self.records_processed = 0
        self.jobs_run = 0

    # -- data movement ---------------------------------------------------------------

    def ingest(self, table: Table, contributor: str | None = None) -> Table:
        self.jobs_run += 1
        return table

    def collect(self, handle: Table) -> Table:
        return handle

    reveal = collect

    # -- relational operators ----------------------------------------------------------

    def concat(self, handles: Sequence[Table]) -> Table:
        handles = list(handles)
        result = handles[0].concat(*handles[1:])
        self._charge(result.num_rows)
        return result

    def project(self, handle: Table, columns: Sequence[str]) -> Table:
        self._charge(handle.num_rows)
        return handle.project(list(columns))

    def filter(self, handle: Table, column: str, op: str, value: float) -> Table:
        self._charge(handle.num_rows)
        return handle.filter(column, op, value)

    def join(self, left: Table, right: Table, left_on: str, right_on: str) -> Table:
        self._charge(left.num_rows + right.num_rows)
        return left.join(right, [left_on], [right_on])

    def aggregate(
        self,
        handle: Table,
        group_by: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
        presorted: bool = False,
    ) -> Table:
        self._charge(handle.num_rows)
        group = [group_by] if group_by else []
        return handle.aggregate(group, agg_col, func, out_name)

    def multiply(self, handle: Table, out_name: str, left: str, right: str | float) -> Table:
        self._charge(handle.num_rows)
        return handle.arithmetic(out_name, left, "*", right)

    def divide(self, handle: Table, out_name: str, left: str, right: str) -> Table:
        self._charge(handle.num_rows)
        return handle.arithmetic(out_name, left, "/", right)

    def arith(self, handle: Table, out_name: str, left: str, op: str, right: str | float) -> Table:
        """Append ``out_name = left <op> right`` (``+``/``-`` map operator)."""
        self._charge(handle.num_rows)
        return handle.arithmetic(out_name, left, op, right)

    def compare(self, handle: Table, out_name: str, left: str, op: str, right: str | float) -> Table:
        self._charge(handle.num_rows)
        return handle.compare(out_name, left, op, right)

    def bool_op(self, handle: Table, out_name: str, op: str, operands: Sequence[str]) -> Table:
        self._charge(handle.num_rows)
        return handle.bool_op(out_name, op, list(operands))

    def sort_by(self, handle: Table, column: str, ascending: bool = True) -> Table:
        self._charge(handle.num_rows * 2)
        return handle.sort_by([column], ascending=ascending)

    def merge_sorted(self, handles: Sequence[Table], column: str, ascending: bool = True) -> Table:
        """Merge relations that are each sorted by ``column``."""
        handles = list(handles)
        combined = handles[0].concat(*handles[1:]) if len(handles) > 1 else handles[0]
        self._charge(combined.num_rows)
        return combined.sort_by([column], ascending=ascending)

    def distinct(self, handle: Table, columns: Sequence[str]) -> Table:
        self._charge(handle.num_rows)
        return handle.distinct(list(columns))

    def limit(self, handle: Table, n: int) -> Table:
        return handle.limit(n)

    def enumerate_rows(self, handle: Table, out_name: str = "row_id") -> Table:
        self._charge(handle.num_rows)
        return handle.enumerate_rows(out_name)

    # -- accounting --------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated seconds of local sequential work performed so far."""
        if self.records_processed == 0 and self.jobs_run == 0:
            return 0.0
        return self.cost_model.seconds(self.records_processed)

    def reset_meter(self) -> None:
        self.records_processed = 0
        self.jobs_run = 0

    def _charge(self, records: int) -> None:
        self.records_processed += int(records)
