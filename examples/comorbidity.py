#!/usr/bin/env python
"""Comorbidity: most common diagnoses in a shared patient cohort (§7.4, Figure 7b).

Two hospitals hold the diagnoses of their c. diff patients and want the ten
most common co-occurring conditions across both cohorts.  The frontend call
is ``aggregate(group=["diagnosis"], aggs={"cnt": COUNT()})``; Conclave splits
the count aggregation into local per-hospital partial counts plus a small
MPC merge; the order-by and limit stay under MPC because diagnosis codes are
private.  The SMCQL baseline applies the same split but runs its MPC step on
an ObliVM-style garbled-circuit backend.

Run with::

    python examples/comorbidity.py [rows_per_hospital]
"""

import sys

import repro as cc
from repro.baselines.smcql import SMCQLBaseline
from repro.queries import comorbidity_query
from repro.workloads.healthlnk import HealthLNKWorkload


def main(rows_per_hospital: int = 400, top_k: int = 10):
    workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.1, seed=29)
    diagnoses = workload.comorbidity_inputs(rows_per_hospital)

    # --- Conclave ---
    spec = comorbidity_query(rows_per_relation=rows_per_hospital, top_k=top_k)
    compiled = cc.compile_query(spec.context)
    print(compiled.report.summary())
    print()

    hospital_1, hospital_2 = spec.parties
    inputs = {
        hospital_1: {"diagnoses_0": diagnoses[0]},
        hospital_2: {"diagnoses_1": diagnoses[1]},
    }
    result = cc.QueryRunner(spec.parties, inputs).run(compiled)
    conclave_top = result.outputs["comorbidity"]

    # --- SMCQL baseline ---
    smcql = SMCQLBaseline()
    smcql_result = smcql.run_comorbidity(diagnoses, top_k=top_k)

    reference = workload.reference_comorbidity(diagnoses, top_k=top_k)
    print(f"{'rank':>4}  {'diagnosis':>9}  {'count':>6}   (cleartext reference)")
    for rank, (code, count) in enumerate(reference.rows(), start=1):
        print(f"{rank:>4}  {code:>9}  {count:>6}")
    print()
    print(f"Conclave top-{top_k} matches reference: "
          f"{sorted(conclave_top.rows()) == sorted(reference.rows())}")
    print(f"Conclave simulated runtime : {result.simulated_seconds:8.1f}s")
    print(f"SMCQL simulated runtime    : {smcql_result.simulated_seconds:8.1f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
