#!/usr/bin/env python
"""Quickstart: a minimal three-party Conclave query.

Three companies each hold a private (region, amount) sales relation.  They
want the total and count of positive sales per region across all three
companies, revealed only to the first company, without showing each other
their books.

The query uses the expression frontend: the filter predicate is an ordinary
Python expression over ``cc.col``, and one ``aggregate`` call computes both
the SUM and the COUNT.

Run with::

    python examples/quickstart.py [runtime]

where ``runtime`` is ``simulated`` (default), ``sockets``, ``service``,
``gateway`` or ``recovery``:

* ``sockets`` executes the same query with one OS process per party, moving
  all cross-party traffic (including the secret-sharing rounds) over real
  TCP sockets, with byte-identical results;
* ``service`` opens a *persistent session* — the per-party agents and their
  TCP mesh stay up across queries, so the example submits the plan several
  times and prints how warm queries amortise the spawn + handshake cost;
* ``gateway`` demonstrates the session's admission control: a burst beyond
  the configured queue limits is shed with an explicit ``QueryRejected``
  (never a silent unbounded backlog), and the session's live metrics —
  latency percentiles, shed counts, bytes on the wire — are printed from
  its Prometheus scrape endpoint;
* ``recovery`` demonstrates supervision: a deterministic fault plan kills
  one party's agent in the middle of the second query's MPC exchange; the
  supervisor restarts it, rejoins it to the surviving mesh, the interrupted
  query is retried transparently, and every result is identical to the
  fault-free run.
"""

import sys

import numpy as np

import repro as cc
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table


def build_query():
    """Declare the query exactly as if all data sat in one database."""
    p1, p2, p3 = cc.Party("alpha.example"), cc.Party("beta.example"), cc.Party("gamma.example")
    schema = [cc.Column("region", cc.INT), cc.Column("amount", cc.INT)]

    with cc.QueryContext() as query:
        sales = [
            cc.new_table(f"sales_{i}", schema, at=p, estimated_rows=1_000)
            for i, p in enumerate((p1, p2, p3))
        ]
        combined = cc.concat(sales, name="all_sales")
        paid = combined.filter(cc.col("amount") > 0, name="paid_sales")
        per_region = paid.aggregate(
            group=["region"], aggs={"total": cc.SUM("amount"), "n": cc.COUNT()}
        )
        per_region.collect("totals_by_region", to=[p1])
    return query, [p.name for p in (p1, p2, p3)]


def generate_inputs(parties, rows=200, seed=0):
    """Synthesise each party's private sales relation."""
    rng = np.random.default_rng(seed)
    schema = Schema([ColumnDef("region"), ColumnDef("amount")])
    inputs = {}
    for i, party in enumerate(parties):
        table = Table(
            schema,
            [rng.integers(0, 5, rows), rng.integers(1, 1_000, rows)],
        )
        inputs[party] = {f"sales_{i}": table}
    return inputs


def main(runtime: str = "simulated"):
    query, parties = build_query()

    # Compile: Conclave decides which operators run locally and which under MPC.
    compiled = cc.compile_query(query)
    print(compiled.explain())
    print()

    # Execute across the three parties — in-process, as one OS process per
    # party with real TCP transport ("sockets"), or over a standing session
    # of long-lived party agents ("service").
    inputs = generate_inputs(parties)
    if runtime == "service":
        # Open once (agents spawn, mesh connects), submit many times: warm
        # queries skip process spawn, mesh handshake and plan shipping.
        import time

        with cc.open_session(inputs) as session:
            result = None
            for i in range(3):
                t0 = time.perf_counter()
                result = session.submit(compiled)
                label = "cold (includes plan shipping)" if i == 0 else "warm"
                print(f"query {i + 1}: {time.perf_counter() - t0:.3f}s  [{label}]")
            stats = session.stats
            print("session stats: "
                  f"{ {k: stats[k] for k in ('queries', 'plan_cache_hits', 'plan_cache_misses')} }")
        print()
    elif runtime == "gateway":
        # Admission control + live metrics: bound the session at 2 concurrent
        # queries and a 2-deep queue, then offer a burst of 8 from two
        # analysts.  Queries beyond the limits are shed *immediately* with
        # QueryRejected — the analyst retries later — instead of growing an
        # unbounded backlog behind everyone's backs.
        limits = cc.GatewayConfig(max_in_flight=2, max_queue_depth=2)
        with cc.open_session(inputs, max_workers=2, gateway=limits) as session:
            result = session.submit(compiled)  # warm the plan cache
            admitted, rejected = [], 0
            for i in range(8):
                try:
                    admitted.append(
                        session.submit_async(compiled, analyst=("alice", "bob")[i % 2])
                    )
                except cc.QueryRejected:
                    rejected += 1
            for pending in admitted:
                result = pending.result(timeout=120)
            print(f"burst of 8: {len(admitted)} admitted, {rejected} shed (QueryRejected)")
            stats = session.stats
            latency = stats["latency"]["query_seconds"]
            print(f"admitted latency: p50 {latency['p50']*1e3:.0f}ms, "
                  f"p99 {latency['p99']*1e3:.0f}ms")
            server = session.serve_metrics()
            print(f"live Prometheus scrape at {server.url}:")
            for line in session.render_prometheus().splitlines():
                if line.startswith("conclave_queries"):
                    print(f"  {line}")
        print()
    elif runtime == "recovery":
        # Supervision + crash recovery: a seeded fault plan hard-kills the
        # beta agent (os._exit, sockets torn down by the kernel) after its
        # 3rd mesh frame of query 2.  The supervisor detects the death,
        # restarts the agent, rejoins it to the surviving mesh, and the
        # RetryPolicy replays the interrupted query — the loop below never
        # sees an error, and every result matches the fault-free first one.
        import time

        from repro.core.config import RestartPolicy, RetryPolicy
        from repro.runtime.faults import FaultPlan, KillFault

        faults = FaultPlan(
            kills=(KillFault(parties[1], at_query=2, after_mesh_frames=3),)
        )
        with cc.open_session(
            inputs,
            restart=RestartPolicy(backoff_seconds=0.05),
            retry=RetryPolicy(max_attempts=3),
            faults=faults,
        ) as session:
            result = first = session.submit(compiled)
            restarts_seen = session.stats["restarts"]
            for i in range(1, 3):
                t0 = time.perf_counter()
                result = session.submit(compiled)
                now = session.stats["restarts"]
                # Fault counters are per process lifetime, so the replacement
                # inherits the plan and dies again at *its* 2nd query — both
                # loop iterations exercise a full crash/restart/retry cycle.
                label = (
                    "agent killed mid-MPC, restarted, query retried"
                    if now > restarts_seen
                    else "warm"
                )
                restarts_seen = now
                print(f"query {i + 1}: {time.perf_counter() - t0:.3f}s  [{label}]")
                assert result.outputs == first.outputs, "recovery changed the result!"
            stats = session.stats
            print(f"restarts={stats['restarts']} retries={stats['retries']} "
                  f"recovery p50="
                  f"{stats['latency']['recovery_seconds']['p50']*1e3:.0f}ms")
        print()
    elif runtime == "sockets":
        result = cc.SocketCoordinator(parties, inputs).run(compiled)
    else:
        result = cc.QueryRunner(parties, inputs).run(compiled)

    print(f"== result revealed to {parties[0]} ({result.runtime} runtime) ==")
    for region, total, count in sorted(result.outputs["totals_by_region"].rows()):
        print(f"  region {region}: total sales {total} over {count} transactions")
    print()
    print(f"simulated end-to-end runtime: {result.simulated_seconds:.2f}s")
    print(f"operators still under MPC   : {compiled.mpc_operator_count()} of {compiled.operator_count()}")
    print()
    print("== leakage report ==")
    print(result.leakage.summary() or "  (nothing revealed beyond the output)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "simulated")
