#!/usr/bin/env python
"""Credit-card regulation: average credit score by ZIP code (§2.1, §7.3).

The regulator holds SSN→ZIP demographics; two credit agencies hold SSN→score
relations.  The agencies trust the regulator — but not each other — with the
SSN column, so Conclave turns the expensive MPC join and group-by into a
hybrid join and a hybrid aggregation with the regulator as the
selectively-trusted party.

The query (see :func:`repro.queries.credit_card_regulation_query`) is a
single expression-API pipeline: ``join(..., on="ssn")``, one ``aggregate``
call computing both ``SUM("score")`` and ``COUNT()`` per ZIP, and an
``avg = total / cnt`` derived column.

Run with::

    python examples/credit_card_regulation.py [rows_per_agency]
"""

import sys

import repro as cc
from repro.queries import credit_card_regulation_query
from repro.workloads.credit import CreditWorkload


def main(rows_per_agency: int = 150):
    num_people = rows_per_agency * 3
    workload = CreditWorkload(num_zip_codes=20, seed=13)
    demo, agencies = workload.generate(num_people, rows_per_agency, num_agencies=2)

    spec = credit_card_regulation_query(
        rows_demographics=num_people, rows_per_agency=rows_per_agency
    )
    compiled = cc.compile_query(spec.context)
    print(compiled.report.summary())
    print()

    regulator, bank_a, bank_b = spec.parties
    inputs = {
        regulator: {"demographics": demo},
        bank_a: {"scores_0": agencies[0]},
        bank_b: {"scores_1": agencies[1]},
    }
    runner = cc.QueryRunner(spec.parties, inputs)
    result = runner.run(compiled)

    output = result.outputs["avg_scores"]
    reference = workload.reference_average_scores(demo, agencies)
    ref_map = {row[0]: row[-1] for row in reference.rows()}

    print(f"{'zip':>5}  {'avg score':>10}  {'reference':>10}")
    for row in sorted(output.rows())[:10]:
        values = dict(zip(output.schema.names, row))
        print(f"{values['zip']:>5}  {values['avg_score']:>10.1f}  {ref_map[values['zip']]:>10.1f}")
    if output.num_rows > 10:
        print(f"  ... ({output.num_rows} ZIP codes total)")
    print()
    print(f"simulated end-to-end runtime: {result.simulated_seconds:.1f}s")
    print()
    print("== what left the cryptographic envelope ==")
    print(result.leakage.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
