#!/usr/bin/env python
"""Market concentration (HHI) across three vehicle-for-hire companies (§2.1, §7.1).

An antitrust regulator wants the Herfindahl-Hirschman index of a ride market
without any company revealing its sales book.  The query is pure expression
API: ``filter(col("price") > 0)``, derived columns like
``with_column("m_share", col("local_rev") / col("total_rev"))``, and
single-aggregate ``aggregate(aggs=...)`` calls.  Conclave pushes the revenue
aggregation down to each company's local (Spark-like) cluster, so only three
per-company revenue totals ever enter MPC.

Run with::

    python examples/market_concentration.py [rows_per_party] [runtime]

where ``runtime`` is ``simulated`` (default, every party in this process)
or ``sockets`` (one OS process per party, share traffic over real TCP).
"""

import sys

import repro as cc
from repro.core.estimator import EstimatorParams, PlanEstimator
from repro.queries import market_concentration_query
from repro.workloads.taxi import TaxiWorkload


def main(rows_per_party: int = 2_000, runtime: str = "simulated"):
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.02, seed=7)
    spec = market_concentration_query(rows_per_party=rows_per_party)

    # Use the data-parallel (Spark-like) cleartext backend, like the paper.
    config = cc.CompilationConfig(cleartext_backend="spark")
    compiled = cc.compile_query(spec.context, config)
    print(compiled.report.summary())
    print()

    tables = workload.party_tables(len(spec.parties), rows_per_party)
    inputs = {
        party: {f"trips_{i}": tables[i]} for i, party in enumerate(spec.parties)
    }
    if runtime == "sockets":
        result = cc.SocketCoordinator(spec.parties, inputs, config).run(compiled)
    else:
        result = cc.QueryRunner(spec.parties, inputs, config).run(compiled)

    hhi = result.outputs["hhi_result"].rows()[0][0]
    print(f"[{result.runtime} runtime] "
          f"HHI over {3 * rows_per_party} private trip records: {hhi:.4f}")
    print(f"cleartext reference                              : {workload.reference_hhi(tables):.4f}")
    print(f"simulated end-to-end runtime                     : {result.simulated_seconds:.1f}s")
    print()

    # The cost estimator prices the same plan at the paper's data scale.
    for total_rows in (10**6, 10**8, 1_300_000_000):
        per_party = total_rows // 3
        big_spec = market_concentration_query(rows_per_party=per_party)
        big_compiled = cc.compile_query(big_spec.context, config)
        estimate = PlanEstimator(EstimatorParams(filter_selectivity=0.98, distinct_fraction=3 / per_party)).estimate(big_compiled)
        print(f"estimated runtime at {total_rows:>13,} total records: {estimate.simulated_seconds:8.0f}s "
              f"(MPC portion {estimate.mpc_seconds:.1f}s)")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 2_000,
        sys.argv[2] if len(sys.argv) > 2 else "simulated",
    )
