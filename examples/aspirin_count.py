#!/usr/bin/env python
"""Aspirin count: the SMCQL medical query, Conclave vs SMCQL (§7.4, Figure 7a).

Two hospitals count how many shared patients have a heart-disease diagnosis
and an aspirin prescription.  Patient identifiers are public (anonymised),
so Conclave joins the relations in the clear with its public join and only
the private diagnosis/medication filters run under MPC.  The two conditions
are one compound predicate in the frontend —
``(col("diagnosis") == 414) & (col("medication") == 1191)`` — which the
compiler lowers to the same chain of filter operators as before.  The SMCQL baseline
runs the join obliviously per patient-id slice on an ObliVM-style
garbled-circuit backend, which is what Figure 7a compares against.

Run with::

    python examples/aspirin_count.py [rows_per_relation]
"""

import sys

import repro as cc
from repro.baselines.smcql import SMCQLBaseline
from repro.queries import aspirin_count_query
from repro.workloads.healthlnk import HealthLNKWorkload


def main(rows_per_relation: int = 300):
    workload = HealthLNKWorkload(patient_overlap=0.02, seed=23)
    diagnoses, medications = workload.aspirin_count_inputs(rows_per_relation)

    # --- Conclave ---
    spec = aspirin_count_query(rows_per_relation=rows_per_relation)
    # Match SMCQL's security guarantee: don't push private-column filters out
    # of MPC (the configuration the paper uses for this comparison).
    config = cc.CompilationConfig(push_down_private_filters=False)
    compiled = cc.compile_query(spec.context, config)
    print(compiled.report.summary())
    print()

    hospital_1, hospital_2 = spec.parties
    inputs = {
        hospital_1: {"diagnoses_0": diagnoses[0], "medications_0": medications[0]},
        hospital_2: {"diagnoses_1": diagnoses[1], "medications_1": medications[1]},
    }
    result = cc.QueryRunner(spec.parties, inputs, config).run(compiled)
    conclave_count = result.outputs["aspirin_count"].rows()[0][0]

    # --- SMCQL baseline ---
    smcql = SMCQLBaseline()
    smcql_result = smcql.run_aspirin_count(diagnoses, medications)

    reference = workload.reference_aspirin_count(diagnoses, medications)
    print(f"patients with heart disease + aspirin (cleartext reference): {reference}")
    print(f"Conclave result : {conclave_count}  in {result.simulated_seconds:8.1f} simulated s")
    print(f"SMCQL result    : {smcql_result.value}  in {smcql_result.simulated_seconds:8.1f} simulated s "
          f"({smcql_result.mpc_slices} MPC slices)")
    print()
    speedup = smcql_result.simulated_seconds / max(result.simulated_seconds, 1e-9)
    print(f"Conclave speedup over SMCQL at this size: {speedup:.1f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
