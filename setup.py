"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
fall back to the legacy editable-install path.  All project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
