#!/usr/bin/env python
"""Transport-security cost artefact for the TLS CI job.

Quantifies what securing the runtime costs, in two layers:

* **codec vs legacy pickle** — encode/decode wall time and wire size for
  representative frame payloads (mesh share vectors, result tables, small
  control frames), measured in-process;
* **plaintext vs mutual TLS** — end-to-end session latency over a slice of
  the differential corpus, one warm session each, with the TLS run also
  forcing ``REPRO_WIRE_PICKLE=0`` (codec-only frames — the multi-host
  deployment posture).  Both runs must stay byte-identical to the simulated
  runtime; the script asserts it, so a divergence fails the job.

Emits ``BENCH_tls.json`` (or the path given as the first argument).

Run with::

    PYTHONPATH=src python benchmarks/bench_tls.py [out.json] [num_plans]
"""

from __future__ import annotations

import json
import os
import pickle
import statistics
import sys
import tempfile
import time

sys.path.insert(0, "tests")

import numpy as np

import repro as cc
from repro.core.config import CompilationConfig, TransportSecurity
from repro.core.dispatch import QueryRunner
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.wire import decode_payload, encode_payload

from test_differential import PARTY_A, PARTY_B, SEED, build_query, generate_spec

DEFAULT_NUM_PLANS = 6
CODEC_REPEATS = 200


def codec_payloads() -> dict[str, object]:
    """Representative frame payloads, biggest mesh traffic first."""
    rng = np.random.default_rng(SEED)
    schema = Schema([ColumnDef("k"), ColumnDef("v")])
    return {
        "share_vector_64k": (
            3, "msg", 7,
            (PARTY_A, PARTY_B, ("open-share", rng.integers(0, 2**63, 8192, dtype=np.uint64)), 65536),
        ),
        "result_table_1k_rows": (
            5, "table", 9,
            ("out", Table(schema, [rng.integers(0, 50, 1000), rng.integers(-1000, 1000, 1000)])),
        ),
        "control_frame": ("query", 12, "a1b2c3d4", {"seed": 3, "retries": 2}),
    }


def bench_codec() -> dict:
    """Pickle-vs-codec size and wall-time deltas per payload kind."""
    results = {}
    for name, payload in codec_payloads().items():
        codec_blob = encode_payload(payload)
        pickle_blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

        def timed(fn):
            samples = []
            for _ in range(5):
                t0 = time.perf_counter()
                for _ in range(CODEC_REPEATS):
                    fn()
                samples.append((time.perf_counter() - t0) / CODEC_REPEATS)
            return round(statistics.median(samples) * 1e6, 3)  # microseconds

        results[name] = {
            "codec_bytes": len(codec_blob),
            "pickle_bytes": len(pickle_blob),
            "size_ratio_codec_over_pickle": round(len(codec_blob) / len(pickle_blob), 3),
            "codec_encode_us": timed(lambda: encode_payload(payload)),
            "codec_decode_us": timed(lambda: decode_payload(codec_blob)),
            "pickle_encode_us": timed(
                lambda: pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            ),
            "pickle_decode_us": timed(lambda: pickle.loads(pickle_blob)),
        }
    return results


def bench_sessions(num_plans: int) -> dict:
    """Plaintext vs TLS warm-session latency over the corpus slice."""
    config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
    plans = []
    for plan in range(num_plans):
        spec = generate_spec(SEED + plan)
        ctx, inputs = build_query(spec)
        compiled = cc.compile_query(ctx, config)
        simulated = QueryRunner([PARTY_A, PARTY_B], inputs, config, seed=3).run(compiled)
        plans.append((plan, spec, compiled, inputs, simulated))

    def run(label: str, security, env: dict[str, str]) -> dict:
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            t0 = time.perf_counter()
            with cc.QuerySession(
                [PARTY_A, PARTY_B], config=config, seed=3, security=security
            ) as session:
                open_wall = time.perf_counter() - t0
                per_plan = []
                for plan, spec, compiled, inputs, simulated in plans:
                    t1 = time.perf_counter()
                    result = session.submit(compiled, inputs=inputs)
                    wall = time.perf_counter() - t1
                    if (
                        result.outputs["out"] != simulated.outputs["out"]
                        or result.mpc_profile != simulated.mpc_profile
                    ):
                        raise AssertionError(
                            f"plan {plan} (seed {spec['seed']}): {label} run diverged "
                            f"from the simulated runtime"
                        )
                    per_plan.append(round(wall, 4))
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        return {
            "session_open_seconds": round(open_wall, 4),
            "per_plan_seconds": per_plan,
            "total_query_seconds": round(sum(per_plan), 4),
            "all_identical_to_simulated": True,
        }

    with tempfile.TemporaryDirectory(prefix="bench-tls-certs-") as cert_dir:
        security = TransportSecurity.dev([PARTY_A, PARTY_B], cert_dir)
        plaintext = run("plaintext", None, {})
        secured = run("tls", security, {"REPRO_WIRE_PICKLE": "0"})
    return {
        "plaintext_pickle_enabled": plaintext,
        "tls_pickle_disabled": secured,
        "tls_overhead_ratio": round(
            secured["total_query_seconds"] / max(plaintext["total_query_seconds"], 1e-9), 3
        ),
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_tls.json"
    num_plans = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_NUM_PLANS

    report = {
        "benchmark": "tls",
        "parties": [PARTY_A, PARTY_B],
        "num_plans": num_plans,
        "codec_vs_pickle": bench_codec(),
        "sessions": bench_sessions(num_plans),
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    sessions = report["sessions"]
    print(
        f"wrote {out_path}: {num_plans} plans, TLS/plaintext query-time ratio "
        f"{sessions['tls_overhead_ratio']}"
    )


if __name__ == "__main__":
    main()
