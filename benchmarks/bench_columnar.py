#!/usr/bin/env python
"""Benchmark: the columnar executor vs the row engine, and MPC round flatness.

Two measurements, both against the same compiled plans:

* **Cleartext throughput** — a join + aggregate + filter heavy single-party
  plan (the row engine's per-row Python loops are the hot spots) executed
  at 1k/10k/100k input rows through both ``executor="row"`` and
  ``executor="columnar"``.  Reports wall seconds and rows/second per
  engine, and the columnar speedup.
* **MPC round flatness** — a two-party MPC aggregate (push-down disabled,
  so the filter and aggregation run on secret shares) at the same row
  counts.  The batched share-vector protocols exchange whole columns per
  protocol round, so the *wire* round count (real barrier-delimited mesh
  exchanges) must not grow with the relation size; the analytic ``rounds``
  figure still reflects the underlying comparator networks.

Emits ``BENCH_columnar.json`` (or the path given as the first argument);
the second argument caps the largest row count for quick CI runs.  Asserts
byte-identical outputs between the engines at every size, a >= 5x columnar
speedup at the largest cleartext size (when it is >= 100k rows), and a
wire-round count that is identical across all MPC sizes.

Run with::

    PYTHONPATH=src python benchmarks/bench_columnar.py [out.json] [max_rows]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table

PARTY_A = "alpha.example"
PARTY_B = "beta.example"
SEED = 42
ROW_COUNTS = [1_000, 10_000, 100_000]
#: Wall-clock speedup the columnar engine must reach at the largest size.
TARGET_SPEEDUP = 5.0


# -- cleartext throughput ---------------------------------------------------------------------


def cleartext_query():
    """Join + arithmetic + filter + group-by aggregate, all at one party —
    every operator runs on the cleartext engine under test."""
    pa = cc.Party(PARTY_A)
    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
        t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("w")], at=pa)
        joined = t0.join(t1, on=[("k", "k")])
        enriched = joined.with_column("x", cc.col("v") * 3).filter(cc.col("x") > 0)
        enriched.aggregate(
            group=["k"], aggs={"s": cc.SUM("x"), "n": cc.COUNT(), "m": cc.MAX("w")}
        ).collect("out", to=[pa])
    return ctx


def cleartext_inputs(rows: int):
    rng = np.random.default_rng(SEED)
    schema_v = Schema([ColumnDef("k"), ColumnDef("v")])
    schema_w = Schema([ColumnDef("k"), ColumnDef("w")])
    # ~1:1 join (keys dense in [0, rows)) and ~rows/8 output groups: the
    # row engine's dict-based join and per-group aggregation loops dominate.
    return {
        PARTY_A: {
            "t0": Table(schema_v, [rng.integers(0, rows, rows), rng.integers(-50, 50, rows)]),
            "t1": Table(schema_w, [rng.integers(0, rows, rows), rng.integers(0, 100, rows)]),
        }
    }


def run_cleartext(compiled_ctx, inputs, executor: str):
    config = CompilationConfig(executor=executor)
    compiled = cc.compile_query(compiled_ctx, config)
    runner = QueryRunner([PARTY_A], inputs, config, seed=SEED)
    start = time.perf_counter()
    result = runner.run(compiled)
    return time.perf_counter() - start, result


def bench_cleartext(row_counts):
    ctx = cleartext_query()
    points = []
    for rows in row_counts:
        inputs = cleartext_inputs(rows)
        row_seconds, row_result = run_cleartext(ctx, inputs, "row")
        col_seconds, col_result = run_cleartext(ctx, inputs, "columnar")
        assert col_result.outputs["out"] == row_result.outputs["out"], (
            f"columnar output diverged from the row engine at {rows} rows"
        )
        points.append({
            "rows": rows,
            "row_seconds": row_seconds,
            "columnar_seconds": col_seconds,
            "row_rows_per_second": rows / row_seconds,
            "columnar_rows_per_second": rows / col_seconds,
            "speedup": row_seconds / col_seconds,
            "output_rows": col_result.outputs["out"].num_rows,
        })
        print(
            f"cleartext {rows:>7} rows: row {row_seconds:7.3f}s  "
            f"columnar {col_seconds:7.3f}s  speedup {row_seconds / col_seconds:5.1f}x"
        )
    return points


# -- MPC round flatness -----------------------------------------------------------------------


def mpc_query():
    """Two-party concat + filter + aggregate, kept under MPC by disabling
    push-down — the share-vector protocols carry whole columns per round."""
    pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
        t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
        ctx.concat([t0, t1]).filter(cc.col("v") > 0).aggregate(
            group=["k"], aggs={"s": cc.SUM("v")}
        ).collect("out", to=[pa])
    return ctx


def mpc_inputs(rows: int):
    rng = np.random.default_rng(SEED + 1)
    schema = Schema([ColumnDef("k"), ColumnDef("v")])
    return {
        party: {name: Table(schema, [rng.integers(0, 9, rows), rng.integers(-50, 50, rows)])}
        for party, name in ((PARTY_A, "t0"), (PARTY_B, "t1"))
    }


def bench_mpc(row_counts):
    ctx = mpc_query()
    config = CompilationConfig(enable_push_down=False)
    points = []
    for rows in row_counts:
        start = time.perf_counter()
        result = cc.run_query(ctx, mpc_inputs(rows), config, seed=SEED)
        seconds = time.perf_counter() - start
        profile = result.mpc_profile
        points.append({
            "rows_per_party": rows,
            "seconds": seconds,
            "wire_rounds": profile["wire_rounds"],
            "analytic_rounds": profile["rounds"],
            "bytes_sent": profile["bytes_sent"],
            "comparisons": profile["comparisons"],
            "multiplications": profile["multiplications"],
        })
        print(
            f"mpc {rows:>7} rows/party: {seconds:7.3f}s  "
            f"wire_rounds {profile['wire_rounds']:>4}  "
            f"analytic rounds {profile['rounds']:>8}"
        )
    return points


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_columnar.json"
    max_rows = int(sys.argv[2]) if len(sys.argv) > 2 else ROW_COUNTS[-1]
    row_counts = [r for r in ROW_COUNTS if r <= max_rows] or [max_rows]

    cleartext = bench_cleartext(row_counts)
    mpc = bench_mpc(row_counts)

    largest = cleartext[-1]
    wire_rounds = {p["wire_rounds"] for p in mpc}
    report = {
        "benchmark": "columnar",
        "row_counts": row_counts,
        "cleartext": cleartext,
        "mpc": mpc,
        "speedup_at_largest": largest["speedup"],
        "wire_rounds_flat": len(wire_rounds) == 1,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {out_path}")

    assert len(wire_rounds) == 1, (
        f"MPC wire rounds must not grow with relation size, got "
        f"{[p['wire_rounds'] for p in mpc]}"
    )
    if largest["rows"] >= 100_000:
        assert largest["speedup"] >= TARGET_SPEEDUP, (
            f"columnar speedup at {largest['rows']} rows is "
            f"{largest['speedup']:.1f}x, expected >= {TARGET_SPEEDUP}x"
        )
    print(
        f"OK: speedup {largest['speedup']:.1f}x at {largest['rows']} rows, "
        f"wire rounds flat at {wire_rounds.pop()}"
    )


if __name__ == "__main__":
    main()
