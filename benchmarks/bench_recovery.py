#!/usr/bin/env python
"""Benchmark: crash recovery in the supervised service runtime.

Two identical query streams run against a standing two-party session:

* ``baseline`` — fault-free: the ordinary warm-session serving path;
* ``faulted``  — a deterministic :class:`~repro.runtime.faults.KillFault`
  hard-kills one agent every ``KILL_EVERY`` queries (``os._exit`` mid-MPC,
  sockets torn down by the kernel).  The supervisor restarts the agent,
  rejoins it to the surviving mesh, and the interrupted query is retried
  transparently — the stream never sees an error.

For each mode the benchmark reports per-query latency percentiles; for the
faulted mode it adds the supervisor's **recovery latency** histogram
(death detected -> replacement serving, p50/p95/p99), restart/retry counts,
and the cost split between *clean* queries (those that never met a crash —
their p50 vs the baseline's is the supervision overhead) and *crash-hit*
queries (the max — one full detect+restart+rejoin+replay cycle).

Every result in both streams is asserted byte-identical to a fault-free
reference run, and the faulted stream must finish with zero exhausted
retries: recovery is exercised, not approximated.

Emits ``BENCH_recovery.json`` (or the path given as the first argument);
the second argument overrides the stream length for quick CI runs.

Run with::

    PYTHONPATH=src python benchmarks/bench_recovery.py [out.json] [queries]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

import repro as cc
from repro.core.config import RestartPolicy, RetryPolicy
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.faults import FaultPlan, KillFault

PARTY_A = "alpha.example"
PARTY_B = "beta.example"
SEED = 42
DEFAULT_QUERIES = 32
#: The victim agent dies at every KILL_EVERY-th query intake *of its
#: process* — fault counters are per process lifetime, so each replacement
#: inherits the plan and dies again KILL_EVERY queries later: a periodic
#: crash, the worst recurring failure mode short of budget exhaustion.
KILL_EVERY = 8


def build_query():
    pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
        t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
        ctx.concat([t0, t1]).aggregate(
            group=["k"], aggs={"s": cc.SUM("v"), "n": cc.COUNT()}
        ).collect("out", to=[pa])
    return ctx


def build_inputs(rows: int = 60):
    rng = np.random.default_rng(SEED)
    schema = Schema([ColumnDef("k"), ColumnDef("v")])
    return {
        party: {
            name: Table(schema, [rng.integers(0, 6, rows), rng.integers(-40, 40, rows)])
        }
        for party, name in ((PARTY_A, "t0"), (PARTY_B, "t1"))
    }


def percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0}
    data = sorted(samples)

    def pct(p: float) -> float:
        index = min(len(data) - 1, max(0, int(round(p / 100.0 * (len(data) - 1)))))
        return data[index]

    return {
        "count": len(data),
        "mean_s": sum(data) / len(data),
        "p50_s": pct(50),
        "p95_s": pct(95),
        "p99_s": pct(99),
        "max_s": data[-1],
    }


def run_stream(compiled, inputs, queries: int, reference, *, faults=None) -> dict:
    restart = RestartPolicy(
        max_restarts=queries,  # the periodic kill is the point, not a budget test
        window_seconds=600.0,
        backoff_seconds=0.05,
        max_backoff_seconds=0.5,
        heartbeat_interval_seconds=None,
    )
    retry = RetryPolicy(max_attempts=4, backoff_seconds=0.05)
    latencies: list[float] = []
    with cc.QuerySession(
        [PARTY_A, PARTY_B], inputs, seed=SEED,
        restart=restart, retry=retry, faults=faults, timeout=60.0,
    ) as session:
        for _ in range(queries):
            started = time.perf_counter()
            result = session.submit(compiled, timeout=120)
            latencies.append(time.perf_counter() - started)
            assert result.outputs["out"] == reference.outputs["out"], (
                "result diverged from the fault-free reference"
            )
            assert result.mpc_profile == reference.mpc_profile
        stats = session.stats
    assert stats["retries_exhausted"] == 0, "a query ran out of retries"
    point = {
        "queries": percentiles(latencies),
        "restarts": stats["restarts"],
        "retries": stats["retries"],
    }
    recovery = stats["latency"].get("recovery_seconds")
    if recovery:
        point["recovery"] = recovery
    return point


def main(argv: list[str]) -> None:
    out_path = argv[1] if len(argv) > 1 else "BENCH_recovery.json"
    queries = int(argv[2]) if len(argv) > 2 else DEFAULT_QUERIES
    if queries < KILL_EVERY:
        raise SystemExit(f"need at least {KILL_EVERY} queries for one kill to fire")

    ctx = build_query()
    inputs = build_inputs()
    compiled = cc.compile_query(ctx)
    reference = cc.run_query(ctx, inputs, seed=SEED)

    faults = FaultPlan(
        kills=(KillFault(PARTY_B, at_query=KILL_EVERY, after_mesh_frames=2),)
    )
    expected_kills = queries // KILL_EVERY

    baseline = run_stream(compiled, inputs, queries, reference)
    faulted = run_stream(compiled, inputs, queries, reference, faults=faults)

    assert baseline["restarts"] == 0 and baseline["retries"] == 0
    assert faulted["restarts"] >= max(1, expected_kills - 1), (
        f"expected ~{expected_kills} restarts, saw {faulted['restarts']}"
    )
    assert faulted["retries"] >= 1, "no crash landed mid-query"
    recovery = faulted.get("recovery")
    assert recovery and recovery["count"] >= 1, "no recovery latency was recorded"
    assert recovery["p99"] < 10.0, f"recovery p99 {recovery['p99']:.2f}s is pathological"

    baseline_p50 = baseline["queries"]["p50_s"]
    faulted_p50 = faulted["queries"]["p50_s"]
    report = {
        "benchmark": "recovery",
        "parties": [PARTY_A, PARTY_B],
        "queries_per_stream": queries,
        "kill_every": KILL_EVERY,
        "baseline": baseline,
        "faulted": faulted,
        "recovery_latency": recovery,
        "overhead": {
            # Clean-query cost of running supervised *and* periodically losing
            # an agent: median over the whole faulted stream vs the baseline.
            "faulted_p50_over_baseline_p50": (
                faulted_p50 / baseline_p50 if baseline_p50 > 0 else None
            ),
            # Worst single query: one full detect + restart + rejoin + replay.
            "crash_hit_query_max_s": faulted["queries"]["max_s"],
        },
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"recovery: {faulted['restarts']} restarts, {faulted['retries']} retries, "
        f"recovery p50={recovery['p50'] * 1000:.0f}ms p99={recovery['p99'] * 1000:.0f}ms; "
        f"query p50 baseline={baseline_p50 * 1000:.0f}ms "
        f"faulted={faulted_p50 * 1000:.0f}ms "
        f"crash-hit max={faulted['queries']['max_s'] * 1000:.0f}ms"
    )
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv)
