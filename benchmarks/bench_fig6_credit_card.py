"""Figure 6: the credit-card regulation query end to end.

The query's first operator is a join, so Conclave cannot push the MPC
frontier down; without hybrid operators the whole query would run under
MPC.  With the regulator annotated as trusted for the agencies' SSN column,
Conclave applies the hybrid join and hybrid aggregation.  Expected shape:
pure Sharemind execution stops scaling around 3k total records (it does not
finish 30k within the two-hour budget), while Conclave processes 300k
records in under 25 minutes.
"""

import pytest

from figures import series_fig6, write_series

import repro as cc
from repro.queries import credit_card_regulation_query
from repro.workloads.credit import CreditWorkload

HEADER = ["records", "sharemind", "conclave"]


@pytest.mark.benchmark(group="fig6-series")
def test_fig6_series(benchmark):
    rows = benchmark(series_fig6)
    write_series("fig6_credit_card", HEADER, rows)
    by_records = {row["records"]: row for row in rows}

    # Pure MPC execution does not complete 30k records within the budget.
    assert by_records[30_000]["sharemind"] is None
    # Conclave finishes 300k records in under 25 minutes.
    conclave_300k = by_records[300_000]["conclave"]
    assert conclave_300k is not None and conclave_300k < 25 * 60
    # Where both complete, the hybrid plan wins beyond trivially small inputs.
    assert by_records[3_000]["conclave"] < by_records[3_000]["sharemind"]


@pytest.mark.benchmark(group="fig6-functional")
@pytest.mark.parametrize("rows_per_agency", [40, 120])
def test_functional_credit_query(benchmark, rows_per_agency):
    num_people = rows_per_agency * 3
    workload = CreditWorkload(num_zip_codes=20, seed=13)
    demo, agencies = workload.generate(num_people, rows_per_agency, num_agencies=2)
    spec = credit_card_regulation_query(
        rows_demographics=num_people, rows_per_agency=rows_per_agency
    )
    regulator, bank_a, bank_b = spec.parties
    inputs = {
        regulator: {"demographics": demo},
        bank_a: {"scores_0": agencies[0]},
        bank_b: {"scores_1": agencies[1]},
    }
    compiled = cc.compile_query(spec.context)

    def run():
        return cc.QueryRunner(spec.parties, inputs).run(compiled)

    result = benchmark(run)
    reference = workload.reference_average_scores(demo, agencies)
    assert result.outputs["avg_scores"].num_rows == reference.num_rows


@pytest.mark.benchmark(group="fig6-functional")
def test_functional_credit_query_pure_mpc(benchmark):
    """The Sharemind-only baseline at a size it can still handle."""
    workload = CreditWorkload(num_zip_codes=8, seed=13)
    demo, agencies = workload.generate(45, 15, num_agencies=2)
    spec = credit_card_regulation_query(rows_demographics=45, rows_per_agency=15)
    regulator, bank_a, bank_b = spec.parties
    inputs = {
        regulator: {"demographics": demo},
        bank_a: {"scores_0": agencies[0]},
        bank_b: {"scores_1": agencies[1]},
    }
    config = cc.CompilationConfig(enable_hybrid_operators=False)
    compiled = cc.compile_query(spec.context, config)

    def run():
        return cc.QueryRunner(spec.parties, inputs, config).run(compiled)

    result = benchmark(run)
    assert result.outputs["avg_scores"].num_rows > 0
