"""Figure 7: comparison with SMCQL on the medical queries.

Panel (a), aspirin count: Conclave computes the patient-id join in the clear
(public join) and only the private filters and the distinct count run under
MPC; SMCQL runs the join obliviously per patient-id slice on its
ObliVM-style garbled-circuit backend.  Panel (b), comorbidity: both systems
split the aggregation into local partial counts plus an MPC merge, so the
gap comes from the MPC backends (Sharemind-style secret sharing vs ObliVM).

Expected shape: Conclave consistently outperforms SMCQL with the gap growing
with data size; SMCQL does not finish within an hour at a few hundred
thousand rows while Conclave keeps scaling.
"""

import pytest

from figures import series_fig7_aspirin, series_fig7_comorbidity, write_series

import repro as cc
from repro.baselines.smcql import SMCQLBaseline
from repro.queries import aspirin_count_query, comorbidity_query
from repro.workloads.healthlnk import HealthLNKWorkload

ASPIRIN_HEADER = ["records", "smcql", "conclave"]
COMORBIDITY_HEADER = ["records", "smcql", "conclave"]


@pytest.mark.benchmark(group="fig7-series")
def test_fig7a_aspirin_series(benchmark):
    rows = benchmark(series_fig7_aspirin)
    write_series("fig7a_aspirin_count", ASPIRIN_HEADER, rows)
    by_records = {row["records"]: row for row in rows}

    # Conclave beats SMCQL at 40k rows per party and beyond.
    assert by_records[40_000]["conclave"] < by_records[40_000]["smcql"] / 5
    # SMCQL does not finish 400k rows within the experiment budget.
    assert by_records[400_000]["smcql"] is None
    # Conclave still completes the largest size (4M rows per party).
    assert by_records[4_000_000]["conclave"] is not None
    # The gap grows with data size while both systems complete.
    completed = [
        row for row in rows if row["smcql"] is not None and row["conclave"] is not None
        and row["records"] >= 1_000
    ]
    ratios = [row["smcql"] / row["conclave"] for row in completed]
    assert ratios == sorted(ratios)


@pytest.mark.benchmark(group="fig7-series")
def test_fig7b_comorbidity_series(benchmark):
    rows = benchmark(series_fig7_comorbidity)
    write_series("fig7b_comorbidity", COMORBIDITY_HEADER, rows)
    by_records = {row["records"]: row for row in rows}

    # At 100k rows per party (20k rows entering MPC) SMCQL takes over an hour.
    smcql_100k = by_records[100_000]["smcql"]
    assert smcql_100k is None or smcql_100k > 3600
    # Conclave completes the same point in minutes.
    assert by_records[100_000]["conclave"] < 600
    # Conclave wins at every non-trivial size.
    for row in rows:
        if row["records"] >= 1_000 and row["smcql"] is not None:
            assert row["conclave"] < row["smcql"]


# -- functional executions --------------------------------------------------------------------------


@pytest.mark.benchmark(group="fig7-functional")
@pytest.mark.parametrize("rows_per_relation", [60, 150])
def test_functional_aspirin_conclave(benchmark, rows_per_relation):
    workload = HealthLNKWorkload(patient_overlap=0.1, seed=23)
    diagnoses, medications = workload.aspirin_count_inputs(rows_per_relation)
    spec = aspirin_count_query(rows_per_relation=rows_per_relation)
    config = cc.CompilationConfig(push_down_private_filters=False)
    compiled = cc.compile_query(spec.context, config)
    h1, h2 = spec.parties
    inputs = {
        h1: {"diagnoses_0": diagnoses[0], "medications_0": medications[0]},
        h2: {"diagnoses_1": diagnoses[1], "medications_1": medications[1]},
    }

    def run():
        return cc.QueryRunner(spec.parties, inputs, config).run(compiled)

    result = benchmark(run)
    expected = workload.reference_aspirin_count(diagnoses, medications)
    assert result.outputs["aspirin_count"].rows()[0][0] == expected


@pytest.mark.benchmark(group="fig7-functional")
@pytest.mark.parametrize("rows_per_relation", [60, 150])
def test_functional_aspirin_smcql(benchmark, rows_per_relation):
    workload = HealthLNKWorkload(patient_overlap=0.1, seed=23)
    diagnoses, medications = workload.aspirin_count_inputs(rows_per_relation)
    smcql = SMCQLBaseline()

    def run():
        return smcql.run_aspirin_count(diagnoses, medications)

    result = benchmark(run)
    assert result.value == workload.reference_aspirin_count(diagnoses, medications)


@pytest.mark.benchmark(group="fig7-functional")
@pytest.mark.parametrize("rows_per_relation", [80, 200])
def test_functional_comorbidity_conclave(benchmark, rows_per_relation):
    workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.1, seed=29)
    diagnoses = workload.comorbidity_inputs(rows_per_relation)
    spec = comorbidity_query(rows_per_relation=rows_per_relation, top_k=10)
    compiled = cc.compile_query(spec.context)
    h1, h2 = spec.parties
    inputs = {h1: {"diagnoses_0": diagnoses[0]}, h2: {"diagnoses_1": diagnoses[1]}}

    def run():
        return cc.QueryRunner(spec.parties, inputs).run(compiled)

    result = benchmark(run)
    expected = workload.reference_comorbidity(diagnoses, top_k=10)
    assert result.outputs["comorbidity"].num_rows == expected.num_rows


@pytest.mark.benchmark(group="fig7-functional")
@pytest.mark.parametrize("rows_per_relation", [80, 200])
def test_functional_comorbidity_smcql(benchmark, rows_per_relation):
    workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.1, seed=29)
    diagnoses = workload.comorbidity_inputs(rows_per_relation)
    smcql = SMCQLBaseline()

    def run():
        return smcql.run_comorbidity(diagnoses, top_k=10)

    result = benchmark(run)
    expected = workload.reference_comorbidity(diagnoses, top_k=10)
    assert result.value.num_rows == expected.num_rows
