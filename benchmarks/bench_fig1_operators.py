"""Figure 1: single-operator microbenchmarks.

Reproduces the three panels of Figure 1 — aggregation (SUM), JOIN and
PROJECT over random integers — comparing insecure Spark, Sharemind
(secret sharing, three parties) and Obliv-C (garbled circuits, two
parties).  Expected shape: the cleartext engine handles tens of millions of
records in seconds while both MPC frameworks stop scaling at 10^3–10^5
records (Obliv-C runs out of memory on the join at ~30k records and on the
projection at a few hundred thousand; Sharemind's sharing/storage overhead
pushes it past ten minutes beyond a few million records).

Each ``test_fig1_*_series`` benchmark regenerates the corresponding panel's
data (written to ``benchmarks/results/fig1_*.txt``) and asserts the shape;
the ``test_functional_*`` benchmarks measure the real (wall-clock) cost of
the functional substrates at small scale.
"""

import pytest

from figures import (
    EXPERIMENT_TIMEOUT_SECONDS,
    mpc_only_config,
    series_fig1,
    write_series,
)

import repro as cc
from repro.cleartext.spark_sim import SparkBackend
from repro.mpc.garbled import OblivCBackend
from repro.mpc.sharemind import SharemindBackend
from repro.workloads.generators import random_integers_table

HEADER = ["records", "spark", "sharemind", "obliv-c"]


def _assert_fig1_shape(rows, mpc_dies_by: int):
    by_records = {row["records"]: row for row in rows}
    largest = max(by_records)
    # Cleartext processing stays interactive at the largest size.
    assert by_records[largest]["spark"] is not None
    assert by_records[largest]["spark"] < 60
    # Both MPC frameworks are either dead (None) or far slower than the
    # cleartext engine once the input exceeds `mpc_dies_by` records.
    for records, row in by_records.items():
        if records >= mpc_dies_by:
            for system in ("sharemind", "obliv-c"):
                value = row[system]
                assert value is None or value > 5 * row["spark"]


@pytest.mark.benchmark(group="fig1-series")
def test_fig1a_aggregation_series(benchmark):
    rows = benchmark(lambda: series_fig1("sum", sizes=(10, 1_000, 100_000, 10_000_000)))
    write_series("fig1a_aggregation", HEADER, rows)
    _assert_fig1_shape(rows, mpc_dies_by=100_000)


@pytest.mark.benchmark(group="fig1-series")
def test_fig1b_join_series(benchmark):
    rows = benchmark(lambda: series_fig1("join", sizes=(10, 1_000, 30_000, 10_000_000)))
    write_series("fig1b_join", HEADER, rows)
    _assert_fig1_shape(rows, mpc_dies_by=1_000)
    # Obliv-C runs out of memory on the join around 30k records (Figure 1b).
    oom_points = [row for row in rows if row["records"] >= 30_000]
    assert all(row["obliv-c"] is None for row in oom_points)


@pytest.mark.benchmark(group="fig1-series")
def test_fig1c_project_series(benchmark):
    rows = benchmark(
        lambda: series_fig1("project", sizes=(10, 1_000, 100_000, 300_000, 10_000_000))
    )
    write_series("fig1c_project", HEADER, rows)
    _assert_fig1_shape(rows, mpc_dies_by=10_000_000)
    # Obliv-C's circuit state exhausts memory at a few hundred thousand records.
    assert any(row["obliv-c"] is None for row in rows if row["records"] >= 300_000)
    # Sharemind finishes but needs more than ten minutes well before 10M.
    sharemind_10m = [row["sharemind"] for row in rows if row["records"] == 10_000_000][0]
    assert sharemind_10m is None or sharemind_10m > 600


# -- functional microbenchmarks (real wall-clock on the implemented substrates) -----------------


@pytest.mark.benchmark(group="fig1-functional")
@pytest.mark.parametrize("records", [100, 400])
def test_functional_spark_aggregation(benchmark, records):
    table = random_integers_table(records, ["key", "value"], seed=1)

    def run():
        backend = SparkBackend()
        handle = backend.ingest(table)
        return backend.collect(backend.aggregate(handle, None, "value", "sum", "total"))

    result = benchmark(run)
    assert result.num_rows == 1


@pytest.mark.benchmark(group="fig1-functional")
@pytest.mark.parametrize("records", [60, 120])
def test_functional_sharemind_aggregation(benchmark, records):
    table = random_integers_table(records, ["key", "value"], low=0, high=50, seed=2)

    def run():
        backend = SharemindBackend(["p1", "p2", "p3"], seed=1)
        handle = backend.ingest(table)
        return backend.reveal(backend.aggregate(handle, "key", "value", "sum", "total"))

    result = benchmark(run)
    assert result.num_rows <= 50


@pytest.mark.benchmark(group="fig1-functional")
@pytest.mark.parametrize("records", [40, 80])
def test_functional_sharemind_join(benchmark, records):
    left = random_integers_table(records, ["key", "value"], low=0, high=20, seed=3)
    right = random_integers_table(records, ["key", "value"], low=0, high=20, seed=4)

    def run():
        backend = SharemindBackend(["p1", "p2", "p3"], seed=1)
        lh, rh = backend.ingest(left), backend.ingest(right)
        return backend.reveal(backend.join(lh, rh, "key", "key"))

    benchmark(run)


@pytest.mark.benchmark(group="fig1-functional")
@pytest.mark.parametrize("records", [200, 800])
def test_functional_oblivc_project(benchmark, records):
    table = random_integers_table(records, ["key", "value"], seed=5)

    def run():
        backend = OblivCBackend(["p1", "p2"])
        handle = backend.ingest(table)
        return backend.reveal(backend.project(handle, ["key"]))

    result = benchmark(run)
    assert result.num_rows == records
