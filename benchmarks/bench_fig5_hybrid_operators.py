"""Figure 5: hybrid operator microbenchmarks.

Panel (a): an MPC join under Sharemind versus Conclave's hybrid join (STP
learns only the shuffled key columns) versus the public join (keys public,
no oblivious work at all).  Panel (b): an MPC grouped aggregation versus the
hybrid aggregation.  Expected shape: the hybrid operators turn the
super-linear oblivious costs into near-linear ones — a hybrid join over
200k records completes in roughly ten minutes while the pure MPC join
cannot get past a few tens of thousands of records, and the public join
scales further still.
"""

import pytest

from figures import series_fig5_agg, series_fig5_join, write_series

from repro.cleartext.python_engine import PythonBackend
from repro.hybrid.hybrid_agg import hybrid_aggregate
from repro.hybrid.hybrid_join import hybrid_join
from repro.hybrid.public_join import public_join
from repro.hybrid.stp import SelectivelyTrustedParty
from repro.mpc.sharemind import SharemindBackend
from repro.workloads.generators import uniform_key_value_table

JOIN_HEADER = ["records", "sharemind-join", "hybrid-join", "public-join"]
AGG_HEADER = ["records", "sharemind-agg", "hybrid-agg"]


@pytest.mark.benchmark(group="fig5-series")
def test_fig5a_join_series(benchmark):
    rows = benchmark(series_fig5_join)
    write_series("fig5a_hybrid_join", JOIN_HEADER, rows)
    by_records = {row["records"]: row for row in rows}

    # The MPC join cannot complete the 200k point within the experiment budget.
    assert by_records[200_000]["sharemind-join"] is None
    # The hybrid join finishes 200k records in roughly ten minutes.
    hybrid_200k = by_records[200_000]["hybrid-join"]
    assert hybrid_200k is not None and hybrid_200k < 15 * 60
    # The public join is cheaper than the hybrid join at every completed size.
    for row in rows:
        if row["hybrid-join"] is not None and row["public-join"] is not None:
            assert row["public-join"] <= row["hybrid-join"]
    # Where all three complete (mid sizes), the hybrid join beats the MPC join.
    mid = by_records[10_000]
    assert mid["hybrid-join"] < mid["sharemind-join"] / 7


@pytest.mark.benchmark(group="fig5-series")
def test_fig5b_aggregation_series(benchmark):
    rows = benchmark(series_fig5_agg)
    write_series("fig5b_hybrid_aggregation", AGG_HEADER, rows)
    by_records = {row["records"]: row for row in rows}
    # At 100k records the hybrid aggregation is at least ~7x faster (§1, §7.2).
    top = by_records[100_000]
    assert top["hybrid-agg"] is not None and top["sharemind-agg"] is not None
    assert top["sharemind-agg"] / top["hybrid-agg"] >= 7
    # The MPC aggregation's cost grows super-linearly, the hybrid one stays
    # near-linear: compare growth factors over the last decade.
    growth_mpc = by_records[100_000]["sharemind-agg"] / by_records[10_000]["sharemind-agg"]
    growth_hybrid = by_records[100_000]["hybrid-agg"] / by_records[10_000]["hybrid-agg"]
    assert growth_hybrid < growth_mpc


# -- functional executions of the hybrid protocols -------------------------------------------------


PARTIES = ["mpc.a.com", "mpc.b.com", "mpc.c.org"]


def _stp():
    return SelectivelyTrustedParty("stp.example", PythonBackend())


@pytest.mark.benchmark(group="fig5-functional")
@pytest.mark.parametrize("records", [50, 150])
def test_functional_hybrid_join(benchmark, records):
    left = uniform_key_value_table(records, records, seed=1)
    right = uniform_key_value_table(records, records, seed=2)

    def run():
        backend = SharemindBackend(PARTIES, seed=1)
        return hybrid_join(
            backend, _stp(), backend.ingest(left), backend.ingest(right), "key", "key"
        )

    result = benchmark(run)
    assert result.reveal().equals_unordered(left.join(right, ["key"], ["key"]))


@pytest.mark.benchmark(group="fig5-functional")
@pytest.mark.parametrize("records", [50, 150])
def test_functional_mpc_join(benchmark, records):
    left = uniform_key_value_table(records, records, seed=3)
    right = uniform_key_value_table(records, records, seed=4)

    def run():
        backend = SharemindBackend(PARTIES, seed=1)
        return backend.join(backend.ingest(left), backend.ingest(right), "key", "key")

    result = benchmark(run)
    assert result.reveal().equals_unordered(left.join(right, ["key"], ["key"]))


@pytest.mark.benchmark(group="fig5-functional")
@pytest.mark.parametrize("records", [100, 300])
def test_functional_public_join(benchmark, records):
    left = uniform_key_value_table(records, records, seed=5)
    right = uniform_key_value_table(records, records, seed=6)

    def run():
        backend = SharemindBackend(PARTIES, seed=1)
        return public_join(
            backend, _stp(), backend.ingest(left), backend.ingest(right), "key", "key"
        )

    result = benchmark(run)
    assert result.reveal().equals_unordered(left.join(right, ["key"], ["key"]))


@pytest.mark.benchmark(group="fig5-functional")
@pytest.mark.parametrize("records", [60, 150])
def test_functional_hybrid_aggregation(benchmark, records):
    table = uniform_key_value_table(records, max(2, records // 10), seed=7)

    def run():
        backend = SharemindBackend(PARTIES, seed=1)
        return hybrid_aggregate(
            backend, _stp(), backend.ingest(table), "key", "value", "sum", "total"
        )

    result = benchmark(run)
    assert result.reveal().equals_unordered(table.aggregate(["key"], "value", "sum", "total"))


@pytest.mark.benchmark(group="fig5-functional")
@pytest.mark.parametrize("records", [60, 150])
def test_functional_mpc_aggregation(benchmark, records):
    table = uniform_key_value_table(records, max(2, records // 10), seed=8)

    def run():
        backend = SharemindBackend(PARTIES, seed=1)
        return backend.aggregate(backend.ingest(table), "key", "value", "sum", "total")

    result = benchmark(run)
    assert result.reveal().equals_unordered(table.aggregate(["key"], "value", "sum", "total"))
