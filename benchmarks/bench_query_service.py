#!/usr/bin/env python
"""Benchmark: cold per-query agent spawn vs. a warm standing query session.

The first socket runtime (PR 2) spawned a fresh agent mesh per query, so
process spawn + TCP mesh handshake sat on every query's critical path.  The
query service keeps the per-party agents and their mesh alive across a
stream of queries.  This benchmark quantifies the amortisation on the
quickstart three-party aggregate:

* ``cold``  — one :class:`~repro.runtime.coordinator.SocketCoordinator`
  ``run`` per query (spawn, handshake, execute, teardown every time);
* ``warm``  — one :class:`~repro.runtime.service.QuerySession` serving all
  queries (spawn + handshake once; later submissions also hit the
  per-session compiled-plan cache and ship only a fingerprint).

Both modes execute the *same* compiled plan with the same seed, and the
benchmark asserts their outputs are byte-identical before reporting.  Emits
``BENCH_service.json`` (in the current working directory, or the path given
as the first argument) with per-query latencies and the cold/warm speedup
so CI can track the service's advantage.

Run with::

    PYTHONPATH=src python benchmarks/bench_query_service.py [out.json]
"""

from __future__ import annotations

import json
import statistics
import sys
import time

import numpy as np

import repro as cc
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.coordinator import SocketCoordinator

PARTIES = ["alpha.example", "beta.example", "gamma.example"]
QUERIES_PER_MODE = 8
ROW_COUNTS = [100, 1_000]
SEED = 42


def build_query():
    schema = [cc.Column("region", cc.INT), cc.Column("amount", cc.INT)]
    parties = [cc.Party(p) for p in PARTIES]
    with QueryContext() as ctx:
        sales = [ctx.new_table(f"sales_{i}", schema, at=p) for i, p in enumerate(parties)]
        paid = ctx.concat(sales).filter(cc.col("amount") > 0)
        paid.aggregate(
            group=["region"], aggs={"total": cc.SUM("amount"), "n": cc.COUNT()}
        ).collect("totals", to=[parties[0]])
    return ctx


def build_inputs(rows: int):
    rng = np.random.default_rng(SEED)
    schema = Schema([ColumnDef("region"), ColumnDef("amount")])
    return {
        party: {
            f"sales_{i}": Table(
                schema, [rng.integers(0, 5, rows), rng.integers(-50, 500, rows)]
            )
        }
        for i, party in enumerate(PARTIES)
    }


def run_once(rows: int) -> dict:
    compiled = cc.compile_query(build_query())
    inputs = build_inputs(rows)

    cold_latencies = []
    cold_outputs = None
    for _ in range(QUERIES_PER_MODE):
        t0 = time.perf_counter()
        result = SocketCoordinator(PARTIES, inputs, compiled.config, seed=SEED).run(compiled)
        cold_latencies.append(time.perf_counter() - t0)
        cold_outputs = result.outputs["totals"]

    warm_latencies = []
    t0 = time.perf_counter()
    session = cc.QuerySession(PARTIES, inputs=inputs, config=compiled.config, seed=SEED)
    session_open_seconds = time.perf_counter() - t0
    try:
        for _ in range(QUERIES_PER_MODE):
            t0 = time.perf_counter()
            result = session.submit(compiled)
            warm_latencies.append(time.perf_counter() - t0)
            if result.outputs["totals"] != cold_outputs:
                raise AssertionError(f"cold and warm outputs diverged at {rows} rows/party")
        cache = dict(session.stats)
    finally:
        session.close()

    cold_mean = statistics.mean(cold_latencies)
    warm_mean = statistics.mean(warm_latencies)
    return {
        "rows_per_party": rows,
        "queries_per_mode": QUERIES_PER_MODE,
        "outputs_byte_identical": True,
        "cold": {
            "per_query_seconds": cold_latencies,
            "mean_seconds": cold_mean,
            "median_seconds": statistics.median(cold_latencies),
        },
        "warm": {
            "session_open_seconds": session_open_seconds,
            "per_query_seconds": warm_latencies,
            "mean_seconds": warm_mean,
            "median_seconds": statistics.median(warm_latencies),
            "plan_cache": cache,
        },
        "warm_speedup": cold_mean / max(warm_mean, 1e-9),
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_service.json"
    results = []
    for rows in ROW_COUNTS:
        entry = run_once(rows)
        results.append(entry)
        print(
            f"rows/party={rows:>6,}  cold mean={entry['cold']['mean_seconds']*1e3:7.1f}ms  "
            f"warm mean={entry['warm']['mean_seconds']*1e3:7.1f}ms  "
            f"speedup={entry['warm_speedup']:.2f}x"
        )
    if not all(e["warm_speedup"] > 1.0 for e in results):
        raise AssertionError(
            "warm-session queries did not beat cold per-query spawn; the service "
            "is not amortising mesh setup"
        )
    payload = {
        "benchmark": "query_service",
        "query": "quickstart_totals_by_region",
        "parties": len(PARTIES),
        "results": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
