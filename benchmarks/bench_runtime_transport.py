#!/usr/bin/env python
"""Benchmark: simulated in-process runtime vs. real per-party processes.

Runs the Figure-4 market-concentration query (three vehicle-for-hire
companies computing the HHI of their joint market) through both runtimes:

* ``simulated`` — every party inside one process, messages over the
  in-process :class:`~repro.runtime.transport.SimulatedTransport`;
* ``sockets``   — one OS process per party, every cross-party message
  (including the secret-sharing rounds of the MPC sub-plans) over real TCP
  connections.

For each runtime and input size it reports wall-clock seconds, the MPC
traffic (messages / bytes / rounds — identical by construction, which the
benchmark asserts), and whether the outputs are byte-identical.  Emits
``BENCH_runtime.json`` (in the current working directory, or the path given
as the first argument) so CI can track the socket runtime's overhead.

Run with::

    PYTHONPATH=src python benchmarks/bench_runtime_transport.py [out.json]
"""

from __future__ import annotations

import json
import sys
import time

import repro as cc
from repro.core.dispatch import QueryRunner
from repro.queries import market_concentration_query
from repro.runtime.coordinator import SocketCoordinator
from repro.workloads.taxi import TaxiWorkload

ROW_COUNTS = [100, 500, 2_000]
SEED = 42


def run_once(rows_per_party: int) -> dict:
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.02, seed=7)
    spec = market_concentration_query(rows_per_party=rows_per_party)
    tables = workload.party_tables(len(spec.parties), rows_per_party)
    inputs = {p: {f"trips_{i}": tables[i]} for i, p in enumerate(spec.parties)}
    compiled = cc.compile_query(spec.context)
    parties = sorted(compiled.dag.parties() | set(inputs))

    t0 = time.perf_counter()
    simulated = QueryRunner(parties, inputs, compiled.config, seed=SEED).run(compiled)
    simulated_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    socketed = SocketCoordinator(parties, inputs, compiled.config, seed=SEED).run(compiled)
    socket_wall = time.perf_counter() - t0

    identical = all(
        simulated.outputs[name] == socketed.outputs[name] for name in simulated.outputs
    )
    if not identical or simulated.mpc_profile != socketed.mpc_profile:
        raise AssertionError(
            f"runtimes diverged at {rows_per_party} rows/party: "
            f"identical_outputs={identical}, "
            f"profiles equal={simulated.mpc_profile == socketed.mpc_profile}"
        )

    return {
        "rows_per_party": rows_per_party,
        "total_rows": rows_per_party * len(parties),
        "outputs_byte_identical": identical,
        "mpc_operator_count": compiled.mpc_operator_count(),
        "mpc_messages": simulated.mpc_profile["messages"],
        "mpc_bytes_sent": simulated.mpc_profile["bytes_sent"],
        "mpc_rounds": simulated.mpc_profile["rounds"],
        "simulated": {
            "wall_seconds": simulated_wall,
            "simulated_seconds": simulated.simulated_seconds,
        },
        "sockets": {
            "wall_seconds": socket_wall,
            "simulated_seconds": socketed.simulated_seconds,
            "overhead_vs_in_process": socket_wall / max(simulated_wall, 1e-9),
        },
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_runtime.json"
    results = []
    for rows in ROW_COUNTS:
        entry = run_once(rows)
        results.append(entry)
        print(
            f"rows/party={rows:>6,}  simulated={entry['simulated']['wall_seconds']:.3f}s  "
            f"sockets={entry['sockets']['wall_seconds']:.3f}s  "
            f"mpc bytes={entry['mpc_bytes_sent']:,}  rounds={entry['mpc_rounds']:,}  "
            f"byte-identical={entry['outputs_byte_identical']}"
        )
    payload = {
        "benchmark": "runtime_transport",
        "query": "fig4_market_concentration",
        "parties": 3,
        "results": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
