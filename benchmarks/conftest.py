"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# The figure helpers live next to the benchmark modules; make them importable
# regardless of how pytest sets up sys.path.
sys.path.insert(0, str(Path(__file__).parent))
