"""Figure 4: the market concentration (HHI) query end to end.

Reproduces the paper's headline result: running the query entirely under
Sharemind stops scaling at ~10k input records, while Conclave — by pushing
the MPC frontier past the per-company revenue aggregation — stays roughly
linear up to 1.3 billion records and finishes in well under 20 minutes,
within a small factor of an insecure Spark job over the pooled data.

``test_fig4_series`` regenerates the figure's three curves;
``test_functional_market_query`` measures the real execution of the full
compiled query (compile + dispatch + MPC) at small scale and checks the
result against the cleartext reference.
"""

import pytest

from figures import conclave_config, series_fig4, write_series

import repro as cc
from repro.queries import market_concentration_query
from repro.workloads.taxi import TaxiWorkload

HEADER = ["records", "sharemind", "insecure-spark", "conclave"]


@pytest.mark.benchmark(group="fig4-series")
def test_fig4_series(benchmark):
    rows = benchmark(series_fig4)
    write_series("fig4_market_concentration", HEADER, rows)
    by_records = {row["records"]: row for row in rows}

    # Sharemind alone cannot scale past ~10k records (DNF or >1h well before 10M).
    big_sharemind = [
        row["sharemind"] for row in rows if row["records"] >= 10_000_000
    ]
    assert all(value is None for value in big_sharemind)

    # Conclave completes 1.3B records in under 20 minutes.
    full_scale = by_records[1_300_000_000]
    assert full_scale["conclave"] is not None
    assert full_scale["conclave"] < 20 * 60

    # Conclave is roughly comparable to insecure Spark (within ~5x) at the
    # largest size, and the insecure joint cluster is faster there.
    assert full_scale["insecure-spark"] is not None
    assert full_scale["insecure-spark"] < full_scale["conclave"] <= 5 * full_scale["insecure-spark"]

    # Conclave is never dramatically slower than the insecure baseline at
    # small/medium sizes either (same order of magnitude).
    for records, row in by_records.items():
        if row["conclave"] is not None and row["insecure-spark"] is not None:
            assert row["conclave"] <= 10 * row["insecure-spark"] + 60


@pytest.mark.benchmark(group="fig4-functional")
@pytest.mark.parametrize("rows_per_party", [100, 300])
def test_functional_market_query(benchmark, rows_per_party):
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.02, seed=11)
    tables = workload.party_tables(3, rows_per_party)
    spec = market_concentration_query(rows_per_party=rows_per_party)
    inputs = {party: {f"trips_{i}": tables[i]} for i, party in enumerate(spec.parties)}
    config = conclave_config(cleartext_backend="python")
    compiled = cc.compile_query(spec.context, config)

    def run():
        runner = cc.QueryRunner(spec.parties, inputs, config)
        return runner.run(compiled)

    result = benchmark(run)
    hhi = result.outputs["hhi_result"].rows()[0][0]
    assert hhi == pytest.approx(workload.reference_hhi(tables), abs=1e-3)


@pytest.mark.benchmark(group="fig4-functional")
def test_functional_market_query_without_pushdown(benchmark):
    """The same query forced entirely under MPC (the Figure 4 baseline)."""
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.02, seed=11)
    tables = workload.party_tables(3, 60)
    spec = market_concentration_query(rows_per_party=60)
    inputs = {party: {f"trips_{i}": tables[i]} for i, party in enumerate(spec.parties)}
    config = cc.CompilationConfig(enable_push_down=False)
    compiled = cc.compile_query(spec.context, config)

    def run():
        return cc.QueryRunner(spec.parties, inputs, config).run(compiled)

    result = benchmark(run)
    assert result.outputs["hhi_result"].rows()[0][0] == pytest.approx(
        workload.reference_hhi(tables), abs=1e-3
    )
