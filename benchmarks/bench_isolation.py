#!/usr/bin/env python
"""MPC-profile comparison artefact for the isolation CI job.

Replays a slice of the differential corpus through the simulated runtime
(all-local ``SecretSharingEngine``) and the socket runtime (one process per
party, per-party ``ShareSliceEngine`` slices) and records, per plan:

* the MPC work/traffic profile of both runs (must be identical — the
  script asserts it, so a lockstep divergence fails the job);
* whether the output tables are byte-identical, including row order;
* each agent's isolation audit (which share slices and cleartext inputs
  the process materialised — every agent must hold only its own).

Emits ``BENCH_isolation.json`` (or the path given as the first argument)
so CI uploads a reviewable record of the cross-runtime comparison.

Run with::

    PYTHONPATH=src python benchmarks/bench_isolation.py [out.json] [num_plans]
"""

from __future__ import annotations

import json
import sys
import time

sys.path.insert(0, "tests")

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner

from test_differential import PARTY_A, PARTY_B, SEED, build_query, generate_spec

DEFAULT_NUM_PLANS = 6


def run_plan(plan: int, config: CompilationConfig, session) -> dict:
    spec = generate_spec(SEED + plan)
    ctx, inputs = build_query(spec)
    compiled = cc.compile_query(ctx, config)

    t0 = time.perf_counter()
    simulated = QueryRunner([PARTY_A, PARTY_B], inputs, config, seed=3).run(compiled)
    simulated_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    socketed = session.submit(compiled, inputs=inputs)
    socket_wall = time.perf_counter() - t0

    identical = simulated.outputs["out"] == socketed.outputs["out"]
    if not identical or simulated.mpc_profile != socketed.mpc_profile:
        raise AssertionError(
            f"plan {plan} (seed {spec['seed']}): socket runtime diverged from "
            f"the simulation\n simulated profile: {simulated.mpc_profile}\n "
            f"socketed profile:  {socketed.mpc_profile}"
        )
    for party, audit in socketed.isolation.items():
        held = set(audit.get("share_parties", [])) | set(
            audit.get("cleartext_input_parties", [])
        )
        if not held <= {party}:
            raise AssertionError(
                f"plan {plan}: agent {party} materialised foreign secrets: {audit}"
            )

    return {
        "plan": plan,
        "seed": spec["seed"],
        "outputs_identical": identical,
        "mpc_profile_simulated": simulated.mpc_profile,
        "mpc_profile_sockets": socketed.mpc_profile,
        "profiles_identical": simulated.mpc_profile == socketed.mpc_profile,
        "isolation": socketed.isolation,
        "simulated_wall_seconds": round(simulated_wall, 4),
        "socket_wall_seconds": round(socket_wall, 4),
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_isolation.json"
    num_plans = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_NUM_PLANS

    config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
    with cc.QuerySession([PARTY_A, PARTY_B], config=config, seed=3) as session:
        plans = [run_plan(plan, config, session) for plan in range(num_plans)]

    report = {
        "benchmark": "isolation",
        "parties": [PARTY_A, PARTY_B],
        "num_plans": num_plans,
        "all_profiles_identical": all(p["profiles_identical"] for p in plans),
        "all_outputs_identical": all(p["outputs_identical"] for p in plans),
        "plans": plans,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"wrote {out_path}: {num_plans} plans, profiles identical: "
        f"{report['all_profiles_identical']}"
    )


if __name__ == "__main__":
    main()
