#!/usr/bin/env python
"""Benchmark: the query gateway under saturation — shed early or queue forever.

An open-loop load generator offers a fixed query rate (two analysts,
alternating submissions) to a standing two-party session and sweeps the
offered rate from below the session's measured capacity to ~3x beyond it,
in two modes:

* ``unbounded``  — the pre-gateway behaviour (no admission limits): every
  query is accepted and waits as long as the backlog demands;
* ``admission``  — a bounded gateway (``max_queue_depth``): beyond the
  queue cap, submissions are shed immediately with ``QueryRejected``.

For each (mode, rate) point the benchmark reports admitted/rejected counts,
p50/p95/p99 end-to-end latency of *admitted* queries, queue-wait vs execute
time, the maximum queue depth observed, the plan-cache hit rate and the
per-party bytes on the wire — everything from the session's own metrics
subsystem, exactly what a scrape would see.

Emits ``BENCH_gateway.json`` (or the path given as the first argument); the
second argument overrides queries-per-point for quick CI runs.  Asserts
that under saturation the bounded gateway sheds (explicitly, never
silently), keeps its queue at or below the cap, and holds admitted p99 well
under the unbounded backlog's.

Run with::

    PYTHONPATH=src python benchmarks/bench_gateway.py [out.json] [queries_per_point]
"""

from __future__ import annotations

import json
import statistics
import sys
import time

import numpy as np

import repro as cc
from repro.core.config import GatewayConfig
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.gateway import QueryRejected

PARTY_A = "alpha.example"
PARTY_B = "beta.example"
SEED = 42
MAX_WORKERS = 2          # small worker pool: saturation without huge rates
MAX_QUEUE_DEPTH = 4      # the bounded mode's admission cap
RATE_MULTIPLIERS = [0.5, 1.5, 3.0]
DEFAULT_QUERIES_PER_POINT = 30
ANALYSTS = ["alice", "bob"]


def build_query():
    pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
        t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
        ctx.concat([t0, t1]).aggregate(
            group=["k"], aggs={"s": cc.SUM("v"), "n": cc.COUNT()}
        ).collect("out", to=[pa])
    return ctx


def build_inputs(rows: int = 60):
    rng = np.random.default_rng(SEED)
    schema = Schema([ColumnDef("k"), ColumnDef("v")])
    return {
        party: {
            name: Table(schema, [rng.integers(0, 6, rows), rng.integers(-40, 40, rows)])
        }
        for party, name in ((PARTY_A, "t0"), (PARTY_B, "t1"))
    }


def open_session(compiled, inputs, gateway: GatewayConfig | None):
    return cc.QuerySession(
        [PARTY_A, PARTY_B],
        inputs=inputs,
        config=compiled.config,
        seed=SEED,
        max_workers=MAX_WORKERS,
        gateway=gateway,
    )


def measure_base_latency(compiled, inputs, queries: int = 4) -> float:
    """Mean sequential latency of the query on a warm session (seconds)."""
    session = open_session(compiled, inputs, None)
    try:
        session.submit(compiled, timeout=120)  # warm the plan cache
        latencies = []
        for _ in range(queries):
            t0 = time.perf_counter()
            session.submit(compiled, timeout=120)
            latencies.append(time.perf_counter() - t0)
        return statistics.mean(latencies)
    finally:
        session.close()


def run_point(compiled, inputs, gateway, offered_qps: float, queries: int) -> dict:
    """Offer ``queries`` submissions at ``offered_qps`` and drain the session."""
    session = open_session(compiled, inputs, gateway)
    try:
        session.submit(compiled, timeout=120)  # warm: sweep hits the plan cache
        interval = 1.0 / offered_qps
        admitted, rejected = [], 0
        queue_depth_max = 0
        start = time.perf_counter()
        for i in range(queries):
            deadline = start + i * interval
            delay = deadline - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                admitted.append(session.submit_async(compiled, analyst=ANALYSTS[i % 2]))
            except QueryRejected:
                rejected += 1
            queue_depth_max = max(queue_depth_max, session.queued())
        for pending in admitted:
            pending.result(timeout=300)
        stats = session.stats
        latency = stats["latency"]
        wire_bytes = {
            party: sum(peer["bytes_sent"] for peer in peers.values())
            for party, peers in stats["wire"].items()
        }
        return {
            "offered_qps": offered_qps,
            "queries_offered": queries,
            "admitted": len(admitted),
            "rejected": rejected,
            "queue_depth_max": queue_depth_max,
            "achieved_qps": len(admitted) / max(time.perf_counter() - start, 1e-9),
            "latency_seconds": {
                name: {k: latency[name][k] for k in ("count", "mean", "p50", "p95", "p99")}
                for name in ("query_seconds", "queue_wait_seconds", "execute_seconds")
                if name in latency
            },
            "plan_cache_hit_rate": stats["plan_cache_hits"] / max(stats["queries"], 1),
            "wire_bytes_sent_per_party": wire_bytes,
        }
    finally:
        session.close()


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_gateway.json"
    queries = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_QUERIES_PER_POINT

    compiled = cc.compile_query(build_query())
    inputs = build_inputs()
    base_latency = measure_base_latency(compiled, inputs)
    capacity_qps = MAX_WORKERS / max(base_latency, 1e-9)
    print(f"base latency {base_latency*1e3:.1f}ms -> capacity ~{capacity_qps:.1f} qps")

    modes = {
        "unbounded": None,
        "admission": GatewayConfig(
            max_in_flight=MAX_WORKERS, max_queue_depth=MAX_QUEUE_DEPTH
        ),
    }
    results: dict[str, list[dict]] = {}
    for mode, gateway in modes.items():
        results[mode] = []
        for multiplier in RATE_MULTIPLIERS:
            point = run_point(compiled, inputs, gateway, capacity_qps * multiplier, queries)
            point["rate_multiplier"] = multiplier
            results[mode].append(point)
            p99 = point["latency_seconds"]["query_seconds"]["p99"]
            print(
                f"{mode:>9}  x{multiplier:<3}  offered={point['offered_qps']:5.1f}qps  "
                f"admitted={point['admitted']:>3}  rejected={point['rejected']:>3}  "
                f"p99={p99*1e3:7.1f}ms  queue_max={point['queue_depth_max']}"
            )

    saturated_admission = results["admission"][-1]
    saturated_unbounded = results["unbounded"][-1]
    if saturated_admission["rejected"] == 0:
        raise AssertionError(
            "the bounded gateway shed nothing at 3x capacity; admission control "
            "is not engaging"
        )
    if any(p["rejected"] != 0 for p in results["unbounded"]):
        raise AssertionError("the unbounded mode must never shed")
    if saturated_admission["queue_depth_max"] > MAX_QUEUE_DEPTH:
        raise AssertionError(
            f"queue depth {saturated_admission['queue_depth_max']} exceeded the "
            f"cap {MAX_QUEUE_DEPTH}"
        )
    admission_p99 = saturated_admission["latency_seconds"]["query_seconds"]["p99"]
    unbounded_p99 = saturated_unbounded["latency_seconds"]["query_seconds"]["p99"]
    if admission_p99 >= unbounded_p99:
        raise AssertionError(
            f"admitted p99 under admission control ({admission_p99:.3f}s) did not "
            f"beat the unbounded backlog's ({unbounded_p99:.3f}s) at saturation"
        )

    payload = {
        "benchmark": "gateway",
        "query": "two_party_sum_count",
        "parties": 2,
        "max_workers": MAX_WORKERS,
        "max_queue_depth": MAX_QUEUE_DEPTH,
        "queries_per_point": queries,
        "base_latency_seconds": base_latency,
        "capacity_qps": capacity_qps,
        "results": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
