"""Shared machinery for regenerating the paper's figures.

Each ``series_*`` function returns the data behind one figure: a list of
``{"records": n, "<system>": seconds-or-None, ...}`` rows, where ``None``
means the system could not complete that point (out of memory or past the
experiment's timeout), matching how the paper's plots truncate.

The numbers come from the plan cost estimator — which prices the very same
compiled plans the functional tests execute, using operation counts that the
tests in ``tests/test_estimates.py`` pin to the functional protocols — so
the *shape* of every curve (who wins, by what factor, where a system stops
scaling) is a property of the implemented system, not of hard-coded data.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Sequence

import repro as cc
from repro.baselines.smcql import SMCQLBaseline
from repro.core.config import CompilationConfig
from repro.core.estimator import EstimatedOOM, EstimatorParams, PlanEstimator
from repro.core.lang import QueryContext
from repro.queries import (
    aspirin_count_query,
    comorbidity_query,
    credit_card_regulation_query,
    market_concentration_query,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's experiments run on a two-hour budget; points that exceed it
#: are reported as "did not finish" (None).
EXPERIMENT_TIMEOUT_SECONDS = 2 * 3600.0

PA, PB, PC = cc.Party("mpc.a.com"), cc.Party("mpc.b.com"), cc.Party("mpc.c.org")
KV_COLUMNS = [cc.Column("key", cc.INT), cc.Column("value", cc.INT)]


def mpc_only_config(mpc_backend: str = "sharemind") -> CompilationConfig:
    """Configuration that forces the whole query under MPC (the 'framework
    only' baselines of Figures 1, 4 and 6)."""
    return CompilationConfig(
        enable_push_down=False,
        enable_push_up=False,
        enable_hybrid_operators=False,
        enable_sort_elimination=False,
        mpc_backend=mpc_backend,
        cleartext_backend="python",
    )


def conclave_config(cleartext_backend: str = "spark") -> CompilationConfig:
    """Full Conclave: every optimization enabled, Spark-like local engine."""
    return CompilationConfig(cleartext_backend=cleartext_backend)


def estimate_or_none(
    compiled, params: EstimatorParams | None = None, timeout: float = EXPERIMENT_TIMEOUT_SECONDS
) -> float | None:
    """Estimate a plan's runtime; None when it OOMs or exceeds the timeout."""
    params = params or EstimatorParams()
    params.timeout_seconds = timeout
    try:
        estimate = PlanEstimator(params).estimate(compiled)
    except EstimatedOOM:
        return None
    if estimate.timed_out:
        return None
    return estimate.simulated_seconds


def write_series(name: str, header: Sequence[str], rows: list[dict]) -> Path:
    """Write a figure's series to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    col_width = 16
    lines = ["".join(f"{h:>{col_width}}" for h in header)]
    for row in rows:
        cells = []
        for h in header:
            value = row.get(h)
            if value is None:
                cells.append(f"{'DNF':>{col_width}}")
            elif isinstance(value, float):
                cells.append(f"{value:>{col_width}.1f}")
            else:
                cells.append(f"{value:>{col_width}}")
        lines.append("".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path


# -- Figure 1: single-operator microbenchmarks ---------------------------------------------------


def _single_operator_query(op: str, total_records: int, parties, single_owner: bool):
    owners = [parties[0]] * len(parties) if single_owner else parties
    per_party = max(1, total_records // len(parties))
    with QueryContext() as ctx:
        tables = [
            ctx.new_table(f"t{i}", KV_COLUMNS, at=p, estimated_rows=per_party)
            for i, p in enumerate(owners)
        ]
        combined = ctx.concat(tables) if len(tables) > 1 else tables[0]
        if op == "sum":
            out = combined.aggregate("total", cc.SUM, over="value")
        elif op == "project":
            out = combined.project(["key"])
        elif op == "join":
            probe = ctx.new_table(
                "probe", KV_COLUMNS, at=owners[0], estimated_rows=per_party
            )
            out = combined.join(probe, left=["key"], right=["key"])
        else:
            raise ValueError(f"unknown microbenchmark operator {op!r}")
        out.collect("out", to=[parties[0]])
    return ctx


def series_fig1(op: str, sizes: Sequence[int] = (10, 1_000, 100_000, 10_000_000)) -> list[dict]:
    """Figure 1a/b/c: insecure Spark vs Sharemind vs Obliv-C for one operator."""
    rows = []
    for total in sizes:
        row: dict = {"records": total}
        # Insecure cleartext baseline: one Spark job over the combined data.
        spark_query = _single_operator_query(op, total, [PA, PB, PC], single_owner=True)
        row["spark"] = estimate_or_none(
            cc.compile_query(spark_query, conclave_config()), EstimatorParams(join_selectivity=1.0)
        )
        # Sharemind: three computing parties, whole query under MPC.
        sm_query = _single_operator_query(op, total, [PA, PB, PC], single_owner=False)
        row["sharemind"] = estimate_or_none(
            cc.compile_query(sm_query, mpc_only_config("sharemind"))
        )
        # Obliv-C: two computing parties, whole query under MPC.
        oc_query = _single_operator_query(op, total, [PA, PB], single_owner=False)
        row["obliv-c"] = estimate_or_none(
            cc.compile_query(oc_query, mpc_only_config("obliv-c"))
        )
        rows.append(row)
    return rows


# -- Figure 4: market concentration -----------------------------------------------------------------


def series_fig4(
    sizes: Sequence[int] = (10, 1_000, 100_000, 10_000_000, 1_300_000_000)
) -> list[dict]:
    """Figure 4: HHI query — Sharemind-only vs insecure Spark vs Conclave."""
    rows = []
    for total in sizes:
        per_party = max(1, total // 3)
        params = EstimatorParams(
            filter_selectivity=0.98, distinct_fraction=min(1.0, 3 / per_party)
        )
        row: dict = {"records": total}

        conclave = cc.compile_query(
            market_concentration_query(rows_per_party=per_party).context, conclave_config()
        )
        row["conclave"] = estimate_or_none(conclave, params)

        sharemind_only = cc.compile_query(
            market_concentration_query(rows_per_party=per_party).context, mpc_only_config()
        )
        row["sharemind"] = estimate_or_none(sharemind_only, params)

        # Insecure Spark: all trips at one party, joint nine-node cluster
        # (three parties' worth of cores).
        insecure_spec = market_concentration_query(
            party_names=["joint.cluster", "joint.cluster2", "joint.cluster3"],
            rows_per_party=per_party,
        )
        insecure = cc.compile_query(insecure_spec.context, conclave_config())
        from repro.cleartext.spark_sim import SparkCostModel

        estimator = PlanEstimator(
            EstimatorParams(
                filter_selectivity=0.98,
                distinct_fraction=min(1.0, 3 / per_party),
                timeout_seconds=EXPERIMENT_TIMEOUT_SECONDS,
            ),
            spark_model=SparkCostModel(total_cores=18),
        )
        try:
            estimate = estimator.estimate(insecure)
            row["insecure-spark"] = None if estimate.timed_out else estimate.simulated_seconds
        except EstimatedOOM:
            row["insecure-spark"] = None
        rows.append(row)
    return rows


# -- Figure 5: hybrid operator microbenchmarks ---------------------------------------------------------


def _two_relation_join_query(per_party: int, trust, public: bool):
    key_col = cc.Column("key", cc.INT, trust=trust, public=public)
    schema = [key_col, cc.Column("value", cc.INT)]
    with QueryContext() as ctx:
        left = ctx.new_table("left", schema, at=PB, estimated_rows=per_party)
        right = ctx.new_table("right", schema, at=PC, estimated_rows=per_party)
        joined = left.join(right, left=["key"], right=["key"])
        joined.collect("out", to=[PB])
    return ctx


def _grouped_agg_query(per_party: int, trust):
    schema = [cc.Column("key", cc.INT, trust=trust), cc.Column("value", cc.INT)]
    with QueryContext() as ctx:
        t1 = ctx.new_table("t1", schema, at=PB, estimated_rows=per_party)
        t2 = ctx.new_table("t2", schema, at=PC, estimated_rows=per_party)
        agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["key"], over="value")
        agg.collect("out", to=[PB])
    return ctx


def series_fig5_join(sizes: Sequence[int] = (10, 1_000, 10_000, 200_000, 2_000_000)) -> list[dict]:
    """Figure 5a: Sharemind MPC join vs Conclave hybrid join vs public join."""
    rows = []
    params = EstimatorParams(join_selectivity=1.0)
    for total in sizes:
        per_party = max(1, total // 2)
        row: dict = {"records": total}
        plain = cc.compile_query(
            _two_relation_join_query(per_party, trust=[], public=False), mpc_only_config()
        )
        row["sharemind-join"] = estimate_or_none(plain, params)
        hybrid = cc.compile_query(
            _two_relation_join_query(per_party, trust=[PA], public=False), conclave_config()
        )
        row["hybrid-join"] = estimate_or_none(hybrid, params)
        public = cc.compile_query(
            _two_relation_join_query(per_party, trust=[], public=True), conclave_config()
        )
        row["public-join"] = estimate_or_none(public, params)
        rows.append(row)
    return rows


def series_fig5_agg(sizes: Sequence[int] = (10, 1_000, 10_000, 100_000)) -> list[dict]:
    """Figure 5b: Sharemind MPC aggregation vs Conclave hybrid aggregation."""
    rows = []
    params = EstimatorParams(distinct_fraction=0.1)
    for total in sizes:
        per_party = max(1, total // 2)
        row: dict = {"records": total}
        plain = cc.compile_query(_grouped_agg_query(per_party, trust=[]), mpc_only_config())
        row["sharemind-agg"] = estimate_or_none(plain, params)
        hybrid = cc.compile_query(
            _grouped_agg_query(per_party, trust=[PA]),
            CompilationConfig(enable_push_down=False, cleartext_backend="spark"),
        )
        row["hybrid-agg"] = estimate_or_none(hybrid, params)
        rows.append(row)
    return rows


# -- Figure 6: credit-card regulation query -------------------------------------------------------------


def series_fig6(sizes: Sequence[int] = (10, 1_000, 3_000, 30_000, 300_000)) -> list[dict]:
    """Figure 6: credit-card query — Sharemind-only vs Conclave (hybrid)."""
    rows = []
    for total in sizes:
        demo_rows = max(1, total // 3)
        agency_rows = max(1, total // 3)
        params = EstimatorParams(distinct_fraction=0.01, join_selectivity=1.0)
        row: dict = {"records": total}
        conclave = cc.compile_query(
            credit_card_regulation_query(
                rows_demographics=demo_rows, rows_per_agency=agency_rows
            ).context,
            conclave_config(),
        )
        row["conclave"] = estimate_or_none(conclave, params)
        sharemind_only = cc.compile_query(
            credit_card_regulation_query(
                rows_demographics=demo_rows, rows_per_agency=agency_rows
            ).context,
            mpc_only_config(),
        )
        row["sharemind"] = estimate_or_none(sharemind_only, params)
        rows.append(row)
    return rows


# -- Figure 7: comparison with SMCQL -----------------------------------------------------------------------


def series_fig7_aspirin(
    sizes: Sequence[int] = (10, 1_000, 40_000, 400_000, 4_000_000), overlap: float = 0.02
) -> list[dict]:
    """Figure 7a: aspirin count — Conclave vs SMCQL."""
    smcql = SMCQLBaseline()
    rows = []
    for per_party in sizes:
        row: dict = {"records": per_party}
        spec = aspirin_count_query(rows_per_relation=per_party)
        config = CompilationConfig(push_down_private_filters=False, cleartext_backend="spark")
        compiled = cc.compile_query(spec.context, config)
        params = EstimatorParams(
            join_selectivity=overlap, filter_selectivity=0.2, distinct_fraction=0.5
        )
        row["conclave"] = estimate_or_none(compiled, params)
        smcql_seconds = smcql.estimate_aspirin_count(per_party, patient_overlap=overlap)
        row["smcql"] = smcql_seconds if smcql_seconds <= EXPERIMENT_TIMEOUT_SECONDS else None
        rows.append(row)
    return rows


def series_fig7_comorbidity(
    sizes: Sequence[int] = (10, 1_000, 10_000, 100_000), distinct_fraction: float = 0.1
) -> list[dict]:
    """Figure 7b: comorbidity — Conclave vs SMCQL (sizes are rows per party)."""
    smcql = SMCQLBaseline()
    rows = []
    for per_party in sizes:
        row: dict = {"records": per_party}
        spec = comorbidity_query(rows_per_relation=per_party)
        compiled = cc.compile_query(spec.context, conclave_config())
        params = EstimatorParams(distinct_fraction=distinct_fraction)
        row["conclave"] = estimate_or_none(compiled, params)
        smcql_seconds = smcql.estimate_comorbidity(per_party, distinct_fraction)
        row["smcql"] = smcql_seconds if smcql_seconds <= EXPERIMENT_TIMEOUT_SECONDS else None
        rows.append(row)
    return rows
