"""Ablation benchmarks: the contribution of each Conclave optimization.

DESIGN.md calls out three design choices whose effect is worth isolating:

* the MPC-frontier push-down (split aggregations, distributed filters)
  — measured on the market-concentration query;
* the hybrid operators (hybrid join + hybrid aggregation)
  — measured on the credit-card regulation query;
* the sort push-up extension (local sorts + oblivious merge)
  — measured on a sort-over-concat query.

Each benchmark compiles the query with the optimization on and off, prices
both plans with the cost estimator at a size where the difference matters,
and records the speedup in ``benchmarks/results/ablations.txt``.
"""

import pytest

from figures import conclave_config, write_series

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.estimator import EstimatorParams, PlanEstimator
from repro.core.lang import QueryContext
from repro.queries import credit_card_regulation_query, market_concentration_query

HEADER = ["optimization", "records", "disabled", "enabled", "speedup"]
_ROWS: list[dict] = []

PA, PB = cc.Party("mpc.a.com"), cc.Party("mpc.b.com")


def _record(optimization: str, records: int, disabled: float, enabled: float):
    _ROWS.append(
        {
            "optimization": optimization,
            "records": records,
            "disabled": disabled,
            "enabled": enabled,
            "speedup": disabled / enabled,
        }
    )
    write_series("ablations", HEADER, _ROWS)


@pytest.mark.benchmark(group="ablations")
def test_ablation_push_down_on_market_query(benchmark):
    rows_per_party = 1_000_000
    params = EstimatorParams(filter_selectivity=0.98, distinct_fraction=3 / rows_per_party)

    def run():
        enabled = cc.compile_query(
            market_concentration_query(rows_per_party=rows_per_party).context,
            conclave_config(),
        )
        disabled = cc.compile_query(
            market_concentration_query(rows_per_party=rows_per_party).context,
            CompilationConfig(enable_push_down=False, cleartext_backend="spark"),
        )
        estimator = PlanEstimator(params)
        return (
            estimator.estimate(disabled).simulated_seconds,
            estimator.estimate(enabled).simulated_seconds,
        )

    disabled_s, enabled_s = benchmark(run)
    _record("mpc-frontier-push-down", 3 * rows_per_party, disabled_s, enabled_s)
    assert enabled_s < disabled_s / 50


@pytest.mark.benchmark(group="ablations")
def test_ablation_hybrid_operators_on_credit_query(benchmark):
    total = 30_000
    params = EstimatorParams(distinct_fraction=0.01, join_selectivity=1.0)

    def run():
        enabled = cc.compile_query(
            credit_card_regulation_query(
                rows_demographics=total // 3, rows_per_agency=total // 3
            ).context,
            conclave_config(),
        )
        disabled = cc.compile_query(
            credit_card_regulation_query(
                rows_demographics=total // 3, rows_per_agency=total // 3
            ).context,
            CompilationConfig(enable_hybrid_operators=False, cleartext_backend="spark"),
        )
        estimator = PlanEstimator(params)
        return (
            estimator.estimate(disabled).simulated_seconds,
            estimator.estimate(enabled).simulated_seconds,
        )

    disabled_s, enabled_s = benchmark(run)
    _record("hybrid-operators", total, disabled_s, enabled_s)
    assert enabled_s < disabled_s / 10


@pytest.mark.benchmark(group="ablations")
def test_ablation_sort_pushup(benchmark):
    rows_per_party = 100_000
    kv = [cc.Column("k"), cc.Column("v")]

    def build():
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", kv, at=PA, estimated_rows=rows_per_party)
            t2 = ctx.new_table("t2", kv, at=PB, estimated_rows=rows_per_party)
            ordered = ctx.concat([t1, t2]).sort_by("v")
            ordered.collect("out", to=[PA])
        return ctx

    def run():
        enabled = cc.compile_query(build(), CompilationConfig(enable_sort_pushup=True))
        disabled = cc.compile_query(build(), CompilationConfig())
        estimator = PlanEstimator()
        return (
            estimator.estimate(disabled).mpc_seconds,
            estimator.estimate(enabled).mpc_seconds,
        )

    disabled_s, enabled_s = benchmark(run)
    _record("sort-push-up", 2 * rows_per_party, disabled_s, enabled_s)
    assert enabled_s < disabled_s
