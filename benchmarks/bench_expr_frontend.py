#!/usr/bin/env python
"""Micro-benchmark of the expression frontend: build + compile latency.

Constructs a 50-operator expression query — a chain of derived columns,
compound-predicate filters and multi-aggregate group-bys over two parties —
and measures

* *build time*: Python-side AST construction and lowering into the operator
  DAG, and
* *compile time*: the full six-stage compilation pipeline over the lowered
  DAG.

Emits ``BENCH_expr.json`` (in the current working directory, or the path
given as the first argument) so CI can track frontend latency regressions.

Run with::

    PYTHONPATH=src python benchmarks/bench_expr_frontend.py [out.json]
"""

from __future__ import annotations

import json
import statistics
import sys
import time

import repro as cc
from repro.core.lang import QueryContext

#: Derived-column / filter stages in the chain; with the input declarations,
#: the aggregates and the collect this lowers to a ~50-operator DAG.
CHAIN_STAGES = 14
REPEATS = 5


def build_query() -> QueryContext:
    """A deep expression query: 50 lowered operators across both parties."""
    pa, pb = cc.Party("alpha.example"), cc.Party("beta.example")
    schema = [cc.Column("k", cc.INT), cc.Column("v", cc.INT), cc.Column("w", cc.INT)]
    with cc.QueryContext() as ctx:
        t1 = ctx.new_table("t1", schema, at=pa, estimated_rows=10_000)
        t2 = ctx.new_table("t2", schema, at=pb, estimated_rows=10_000)
        rel = ctx.concat([t1, t2])
        for i in range(CHAIN_STAGES):
            rel = rel.with_column(f"d{i}", cc.col("v") * (i + 2) + cc.col("w"))
            if i % 3 == 0:
                rel = rel.filter((cc.col(f"d{i}") > i) | (cc.col("w") == i))
            rel = rel.project(["k", "v", "w"] + [f"d{j}" for j in range(i + 1)])
        stats = rel.aggregate(
            group=["k"],
            aggs={"total": cc.SUM(f"d{CHAIN_STAGES - 1}"), "n": cc.COUNT(), "hi": cc.MAX("v")},
        )
        stats.with_column("avg", cc.col("total") / cc.col("n")).collect("out", to=[pa])
    return ctx


def measure() -> dict:
    build_times, compile_times, operator_counts, mpc_counts = [], [], [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        ctx = build_query()
        build_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        compiled = cc.compile_query(ctx)
        compile_times.append(time.perf_counter() - start)
        operator_counts.append(compiled.operator_count())
        mpc_counts.append(compiled.mpc_operator_count())

    return {
        "benchmark": "expr_frontend",
        "description": "query-build + compile latency of a 50-operator expression query",
        "repeats": REPEATS,
        "operators": operator_counts[0],
        "mpc_operators": mpc_counts[0],
        "build_seconds_median": statistics.median(build_times),
        "build_seconds_min": min(build_times),
        "compile_seconds_median": statistics.median(compile_times),
        "compile_seconds_min": min(compile_times),
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_expr.json"
    results = measure()
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(json.dumps(results, indent=2))
    assert results["operators"] >= 50, "benchmark query shrank below 50 operators"


if __name__ == "__main__":
    main()
